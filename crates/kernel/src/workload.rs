//! Workload descriptors: the eight phases of the mini-app expressed as
//! `lv-compiler` loop nests, per code variant.
//!
//! The loop nests mirror the numeric implementation in [`crate::phases`]
//! statement by statement: the same loop structure, the same per-iteration
//! floating-point work, and memory references that address the *same* data —
//! global mesh arrays (coordinates, unknowns, connectivity, global RHS and
//! matrix) and the `VECTOR_SIZE`-blocked element workspace of
//! [`crate::workspace::WorkspaceLayout`] — in a simulated flat address space.
//! The code variants are obtained by applying the paper's refactorings
//! ([`lv_compiler::transforms`]) to the *original* nests, exactly as the
//! authors edited the Fortran source:
//!
//! * `Original`: phases 1–2 iterate `ivect` with a run-time trip count
//!   (`VECTOR_DIM` dummy argument) — the auto-vectorizer leaves them scalar;
//! * `VEC2`: the trip count becomes a compile-time constant — phase 2
//!   vectorizes over its short innermost `idof` loop (AVL ≈ 4);
//! * `IVEC2`: the phase-2 nest is interchanged so `ivect` is innermost —
//!   AVL = `VECTOR_SIZE`;
//! * `VEC1`: the phase-1 loop is distributed — its gather half vectorizes.

use crate::config::{KernelConfig, OptLevel};
use crate::workspace::WorkspaceLayout;
use crate::{NDIME, NDOFN, PGAUS, PNODE};
use lv_compiler::ir::{
    AffineExpr, IndexExpr, Loop, LoopItem, LoopNest, MemRef, Statement, TripCount,
};
use lv_compiler::transforms;
use lv_mesh::chunks::ElementChunk;
use lv_mesh::Mesh;
use lv_sim::counters::PhaseId;
use lv_sim::isa::VectorOp;
use std::sync::Arc;

/// Base byte addresses of the global arrays and of the element workspace in
/// the simulated address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMap {
    /// Nodal coordinates (`coords[3*node + dim]`, f64).
    pub coords: u64,
    /// Nodal unknowns (`unk[4*node + dof]`, f64: velocity + pressure).
    pub unknowns: u64,
    /// Previous-time-step nodal unknowns (same layout as `unknowns`).
    pub unknowns_old: u64,
    /// Element connectivity (`lnods[8*elem + a]`, u32).
    pub lnods: u64,
    /// Global RHS (`rhs[3*node + dim]`, f64).
    pub rhs: u64,
    /// Global CSR matrix values (addressed approximately through the row).
    pub matrix: u64,
    /// Tabulated shape functions / derivatives (small, read-only).
    pub shape: u64,
    /// Element workspace (the `VECTOR_SIZE`-blocked local arrays).
    pub local: u64,
}

impl Default for AddressMap {
    fn default() -> Self {
        AddressMap {
            coords: 0x1000_0000,
            unknowns: 0x2000_0000,
            unknowns_old: 0x2800_0000,
            lnods: 0x3000_0000,
            rhs: 0x4000_0000,
            matrix: 0x5000_0000,
            shape: 0x6000_0000,
            local: 0x0010_0000,
        }
    }
}

/// Builds the per-chunk loop nests of every phase for a mesh, configuration
/// and code variant.
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    config: KernelConfig,
    addr: AddressMap,
    layout: WorkspaceLayout,
    /// Shared copy of the mesh connectivity used by the gather/scatter
    /// indirections.
    lnods: Arc<Vec<u32>>,
}

impl WorkloadBuilder {
    /// Creates a workload builder for `mesh` under `config`.
    pub fn new(mesh: &Mesh, config: KernelConfig) -> Self {
        WorkloadBuilder {
            config,
            addr: AddressMap::default(),
            layout: WorkspaceLayout::new(config.vector_size),
            lnods: Arc::new(mesh.connectivity().to_vec()),
        }
    }

    /// The simulated address map.
    pub fn address_map(&self) -> &AddressMap {
        &self.addr
    }

    /// The element-workspace layout used for the local-array addresses.
    pub fn layout(&self) -> &WorkspaceLayout {
        &self.layout
    }

    /// Builds the loop nests of all eight phases for one element chunk, in
    /// phase order, with the configured code variant already applied.
    pub fn phase_nests(&self, chunk: &ElementChunk) -> Vec<(PhaseId, LoopNest)> {
        let opt = self.config.opt_level;
        vec![
            (PhaseId::new(1), self.phase1(chunk, opt)),
            (PhaseId::new(2), self.phase2(chunk, opt)),
            (PhaseId::new(3), self.phase3(chunk)),
            (PhaseId::new(4), self.phase4(chunk)),
            (PhaseId::new(5), self.phase5(chunk)),
            (PhaseId::new(6), self.phase6(chunk)),
            (PhaseId::new(7), self.phase7(chunk)),
            (PhaseId::new(8), self.phase8(chunk)),
        ]
    }

    /// Element index (in f64 elements from `addr.local`) of a workspace array
    /// entry: `offset + slot*vs + ivect`, expressed as an affine expression in
    /// the `ivect` loop level.
    fn local_affine(&self, array_offset: usize, slot: usize, ivect_level: usize) -> IndexExpr {
        IndexExpr::Affine(
            AffineExpr::term(ivect_level, 1)
                .plus_const((array_offset + slot * self.config.vector_size) as i64),
        )
    }

    /// Same as [`Self::local_affine`] but with additional loop-dependent slot
    /// terms `(level, slots_per_step)`.
    fn local_affine_terms(
        &self,
        array_offset: usize,
        base_slot: usize,
        ivect_level: usize,
        terms: &[(usize, usize)],
    ) -> IndexExpr {
        let vs = self.config.vector_size as i64;
        let mut e = AffineExpr::term(ivect_level, 1)
            .plus_const((array_offset + base_slot * self.config.vector_size) as i64);
        for &(level, slots) in terms {
            e = e.plus_term(level, slots as i64 * vs);
        }
        IndexExpr::Affine(e)
    }

    /// The trip count of the `ivect` loops of the gather routine (phases 1–2):
    /// a run-time value in the original code, a compile-time constant from
    /// VEC2 onwards.
    fn gather_trip(&self, chunk: &ElementChunk, opt: OptLevel) -> TripCount {
        if opt.has_vec2() {
            TripCount::Const(chunk.len)
        } else {
            TripCount::Runtime(chunk.len)
        }
    }

    // ----------------------------------------------------------------- phase 1

    /// Phase 1: connectivity handling (work A, not vectorizable) plus the
    /// coordinate gather (work B, vectorizable).
    fn phase1(&self, chunk: &ElementChunk, opt: OptLevel) -> LoopNest {
        let first = chunk.first_element;
        // Work A: read the 8 connectivity entries of the element and perform
        // the slot bookkeeping (indirect addressing + branches on element
        // validity make it non-vectorizable).
        let mut work_a = Statement::new("work_a_connectivity")
            .with_int_ops(16)
            .with_flops(VectorOp::Mul, 6)
            .with_flops(VectorOp::Add, 4)
            .not_vectorizable();
        for a in 0..PNODE {
            work_a = work_a.with_mem(MemRef::index_load(
                "lnods",
                self.addr.lnods,
                IndexExpr::Affine(
                    AffineExpr::term(0, PNODE as i64).plus_const((first * PNODE + a) as i64),
                ),
            ));
            // Characteristic-length computation re-reads one coordinate per
            // node through the connectivity (data-dependent, hence part of
            // the non-vectorizable half).
            work_a = work_a.with_mem(MemRef::load(
                "coords",
                self.addr.coords,
                IndexExpr::Indirect {
                    table: Arc::clone(&self.lnods),
                    table_index: AffineExpr::term(0, PNODE as i64)
                        .plus_const((first * PNODE + a) as i64),
                    scale: NDIME as i64,
                    offset: AffineExpr::constant(0),
                },
            ));
        }
        // Work B: gather the nodal coordinates into elcod.
        let mut work_b = Statement::new("work_b_gather_coords").with_int_ops(4);
        for a in 0..PNODE {
            for d in 0..NDIME {
                work_b = work_b
                    .with_mem(MemRef::load(
                        "coords",
                        self.addr.coords,
                        IndexExpr::Indirect {
                            table: Arc::clone(&self.lnods),
                            table_index: AffineExpr::term(0, PNODE as i64)
                                .plus_const((first * PNODE + a) as i64),
                            scale: NDIME as i64,
                            offset: AffineExpr::constant(d as i64),
                        },
                    ))
                    .with_mem(MemRef::store(
                        "elcod",
                        self.addr.local,
                        self.local_affine(self.layout.elcod, a * NDIME + d, 0),
                    ));
            }
        }
        let ivect =
            Loop::new("ivect", 0, self.gather_trip(chunk, opt)).with_stmt(work_a).with_stmt(work_b);
        let nest = LoopNest::new("phase1_gather_coords", vec![LoopItem::Loop(ivect)], 1);
        if opt.has_vec1() {
            let (split, _) = transforms::distribute(&nest, "ivect");
            split
        } else {
            nest
        }
    }

    // ----------------------------------------------------------------- phase 2

    /// Phase 2: gather of the nodal unknowns (velocity + pressure).
    fn phase2(&self, chunk: &ElementChunk, opt: OptLevel) -> LoopNest {
        let first = chunk.first_element;
        let vs = self.config.vector_size;
        let gather = Statement::new("gather_unknowns")
            .with_int_ops(2)
            .with_mem(MemRef::load(
                "unknowns",
                self.addr.unknowns,
                IndexExpr::Indirect {
                    table: Arc::clone(&self.lnods),
                    table_index: AffineExpr::term(0, PNODE as i64)
                        .plus_term(1, 1)
                        .plus_const((first * PNODE) as i64),
                    scale: NDOFN as i64,
                    offset: AffineExpr::term(2, 1),
                },
            ))
            .with_mem(MemRef::store(
                "elvel",
                self.addr.local,
                IndexExpr::Affine(
                    AffineExpr::term(0, 1)
                        .plus_term(1, (NDOFN * vs) as i64)
                        .plus_term(2, vs as i64)
                        .plus_const(self.layout.elvel as i64),
                ),
            ))
            .with_mem(MemRef::load(
                "unknowns_old",
                self.addr.unknowns_old,
                IndexExpr::Indirect {
                    table: Arc::clone(&self.lnods),
                    table_index: AffineExpr::term(0, PNODE as i64)
                        .plus_term(1, 1)
                        .plus_const((first * PNODE) as i64),
                    scale: NDOFN as i64,
                    offset: AffineExpr::term(2, 1),
                },
            ))
            .with_mem(MemRef::store(
                "elvel_old",
                self.addr.local,
                IndexExpr::Affine(
                    AffineExpr::term(0, 1)
                        .plus_term(1, (NDOFN * vs) as i64)
                        .plus_term(2, vs as i64)
                        .plus_const(self.layout.elvel_old as i64),
                ),
            ));
        let idof = Loop::new("idof", 2, TripCount::Const(NDOFN)).with_stmt(gather);
        let inode = Loop::new("inode", 1, TripCount::Const(PNODE)).with_loop(idof);
        let ivect = Loop::new("ivect", 0, self.gather_trip(chunk, opt)).with_loop(inode);
        let nest = LoopNest::new("phase2_gather_unknowns", vec![LoopItem::Loop(ivect)], 3);
        if opt.has_ivec2() {
            // Two interchanges push ivect to the innermost position:
            // (ivect, inode) then (ivect, idof).
            let (step1, _) = transforms::interchange(&nest, "ivect", "inode");
            let (step2, _) = transforms::interchange(&step1, "ivect", "idof");
            step2
        } else {
            nest
        }
    }

    // ----------------------------------------------------------------- phase 3

    /// Phase 3: Jacobian, determinant/inverse, Cartesian derivatives.
    fn phase3(&self, chunk: &ElementChunk) -> LoopNest {
        let vs = chunk.len;
        let trip = TripCount::Const(vs);
        // Jacobian accumulation: per (igaus, inode) a 3×3 FMA update reading
        // three elcod components and the (loop-invariant) reference
        // derivatives.
        let mut jac_acc = Statement::new("jacobian_accumulate")
            .with_flops(VectorOp::Fma, (NDIME * NDIME) as u32)
            .with_int_ops(2);
        for d in 0..NDIME {
            jac_acc = jac_acc
                .with_mem(MemRef::load(
                    "elcod",
                    self.addr.local,
                    self.local_affine_terms(self.layout.elcod, d, 2, &[(1, NDIME)]),
                ))
                .with_mem(MemRef::load(
                    "deriv_ref",
                    self.addr.shape,
                    IndexExpr::Affine(
                        AffineExpr::term(0, (PNODE * NDIME) as i64)
                            .plus_term(1, NDIME as i64)
                            .plus_const(d as i64),
                    ),
                ));
        }
        let ivect_a = Loop::new("ivect_jac", 2, trip).with_stmt(jac_acc);
        let inode_a = Loop::new("inode_jac", 1, TripCount::Const(PNODE)).with_loop(ivect_a);

        // Determinant + inverse + gpvol store.
        let det_inv = Statement::new("det_and_inverse")
            .with_flops(VectorOp::Mul, 22)
            .with_flops(VectorOp::Add, 12)
            .with_flops(VectorOp::Div, 1)
            .with_int_ops(2)
            .with_mem(MemRef::store(
                "gpvol",
                self.addr.local,
                self.local_affine_terms(self.layout.gpvol, 0, 3, &[(0, 1)]),
            ));
        let ivect_b = Loop::new("ivect_det", 3, trip).with_stmt(det_inv);

        // Cartesian derivatives gpcar.
        let mut gpcar_calc = Statement::new("cartesian_derivatives")
            .with_flops(VectorOp::Fma, (NDIME * NDIME) as u32)
            .with_int_ops(2);
        for d in 0..NDIME {
            gpcar_calc = gpcar_calc.with_mem(MemRef::store(
                "gpcar",
                self.addr.local,
                self.local_affine_terms(self.layout.gpcar, d, 5, &[(0, PNODE * NDIME), (4, NDIME)]),
            ));
        }
        let ivect_c = Loop::new("ivect_car", 5, trip).with_stmt(gpcar_calc);
        let inode_c = Loop::new("inode_car", 4, TripCount::Const(PNODE)).with_loop(ivect_c);

        let igaus = Loop::new("igaus", 0, TripCount::Const(PGAUS))
            .with_loop(inode_a)
            .with_loop(ivect_b)
            .with_loop(inode_c);
        LoopNest::new("phase3_jacobian", vec![LoopItem::Loop(igaus)], 6)
    }

    // ----------------------------------------------------------------- phase 4

    /// Phase 4: velocity and velocity-gradient interpolation at the
    /// integration points.
    fn phase4(&self, chunk: &ElementChunk) -> LoopNest {
        let vs = chunk.len;
        let mut interp = Statement::new("gauss_interpolation")
            .with_flops(VectorOp::Fma, (NDIME + NDIME * NDIME) as u32)
            .with_int_ops(2)
            // Loop-invariant shape function N_a(igaus).
            .with_mem(MemRef::load(
                "shape_n",
                self.addr.shape,
                IndexExpr::Affine(AffineExpr::term(0, PNODE as i64).plus_term(1, 1)),
            ));
        for d in 0..NDIME {
            interp = interp
                .with_mem(MemRef::load(
                    "elvel",
                    self.addr.local,
                    self.local_affine_terms(self.layout.elvel, d, 2, &[(1, NDOFN)]),
                ))
                .with_mem(MemRef::load(
                    "gpcar",
                    self.addr.local,
                    self.local_affine_terms(
                        self.layout.gpcar,
                        d,
                        2,
                        &[(0, PNODE * NDIME), (1, NDIME)],
                    ),
                ))
                .with_mem(MemRef::load(
                    "gpvel",
                    self.addr.local,
                    self.local_affine_terms(self.layout.gpvel, d, 2, &[(0, NDIME)]),
                ))
                .with_mem(MemRef::store(
                    "gpvel",
                    self.addr.local,
                    self.local_affine_terms(self.layout.gpvel, d, 2, &[(0, NDIME)]),
                ));
        }
        for k in 0..NDIME * NDIME {
            interp = interp
                .with_mem(MemRef::load(
                    "gpgve",
                    self.addr.local,
                    self.local_affine_terms(self.layout.gpgve, k, 2, &[(0, NDIME * NDIME)]),
                ))
                .with_mem(MemRef::store(
                    "gpgve",
                    self.addr.local,
                    self.local_affine_terms(self.layout.gpgve, k, 2, &[(0, NDIME * NDIME)]),
                ));
        }
        let ivect = Loop::new("ivect", 2, TripCount::Const(vs)).with_stmt(interp);
        let inode = Loop::new("inode", 1, TripCount::Const(PNODE)).with_loop(ivect);
        let igaus = Loop::new("igaus", 0, TripCount::Const(PGAUS)).with_loop(inode);
        LoopNest::new("phase4_gauss_values", vec![LoopItem::Loop(igaus)], 3)
    }

    // ----------------------------------------------------------------- phase 5

    /// Phase 5: stabilization parameter and advection velocity.
    fn phase5(&self, chunk: &ElementChunk) -> LoopNest {
        let vs = chunk.len;
        let mut tau_stmt = Statement::new("stabilization_tau")
            .with_flops(VectorOp::Mul, 6)
            .with_flops(VectorOp::Add, 4)
            .with_flops(VectorOp::Div, 2)
            .with_int_ops(2)
            .with_mem(MemRef::store(
                "tau",
                self.addr.local,
                self.local_affine_terms(self.layout.tau, 0, 1, &[(0, 1)]),
            ));
        for d in 0..NDIME {
            tau_stmt = tau_stmt
                .with_mem(MemRef::load(
                    "gpvel",
                    self.addr.local,
                    self.local_affine_terms(self.layout.gpvel, d, 1, &[(0, NDIME)]),
                ))
                .with_mem(MemRef::store(
                    "gpadv",
                    self.addr.local,
                    self.local_affine_terms(self.layout.gpadv, d, 1, &[(0, NDIME)]),
                ));
        }
        let ivect = Loop::new("ivect", 1, TripCount::Const(vs)).with_stmt(tau_stmt);
        let igaus = Loop::new("igaus", 0, TripCount::Const(PGAUS)).with_loop(ivect);
        LoopNest::new("phase5_stabilization", vec![LoopItem::Loop(igaus)], 2)
    }

    // ----------------------------------------------------------------- phase 6

    /// Phase 6: convective residual (Galerkin + SUPG) and, for the
    /// semi-implicit scheme, the convection matrix — the heaviest phase.
    fn phase6(&self, chunk: &ElementChunk) -> LoopNest {
        let vs = chunk.len;
        let trip = TripCount::Const(vs);
        // Residual contribution per (igaus, inode).
        let mut residual = Statement::new("convective_residual")
            .with_flops(VectorOp::Fma, 15)
            .with_flops(VectorOp::Mul, 9)
            .with_flops(VectorOp::Add, 6)
            .with_int_ops(2)
            .with_mem(MemRef::load(
                "gpvol",
                self.addr.local,
                self.local_affine_terms(self.layout.gpvol, 0, 2, &[(0, 1)]),
            ))
            .with_mem(MemRef::load(
                "tau",
                self.addr.local,
                self.local_affine_terms(self.layout.tau, 0, 2, &[(0, 1)]),
            ));
        for d in 0..NDIME {
            residual = residual
                .with_mem(MemRef::load(
                    "gpadv",
                    self.addr.local,
                    self.local_affine_terms(self.layout.gpadv, d, 2, &[(0, NDIME)]),
                ))
                .with_mem(MemRef::load(
                    "gpcar",
                    self.addr.local,
                    self.local_affine_terms(
                        self.layout.gpcar,
                        d,
                        2,
                        &[(0, PNODE * NDIME), (1, NDIME)],
                    ),
                ))
                .with_mem(MemRef::load(
                    "elrbu",
                    self.addr.local,
                    self.local_affine_terms(self.layout.elrbu, d, 2, &[(1, NDIME)]),
                ))
                .with_mem(MemRef::store(
                    "elrbu",
                    self.addr.local,
                    self.local_affine_terms(self.layout.elrbu, d, 2, &[(1, NDIME)]),
                ));
        }
        for k in 0..NDIME * NDIME {
            residual = residual.with_mem(MemRef::load(
                "gpgve",
                self.addr.local,
                self.local_affine_terms(self.layout.gpgve, k, 2, &[(0, NDIME * NDIME)]),
            ));
        }
        let ivect_res = Loop::new("ivect_res", 2, trip).with_stmt(residual);
        let inode_res = Loop::new("inode_res", 1, TripCount::Const(PNODE)).with_loop(ivect_res);

        // Convection-matrix contribution per (igaus, inode, jnode).
        let mut matrix_items: Vec<LoopItem> = Vec::new();
        if self.config.semi_implicit {
            let mut conv_mat = Statement::new("convective_matrix")
                .with_flops(VectorOp::Fma, 5)
                .with_flops(VectorOp::Mul, 4)
                .with_flops(VectorOp::Add, 2)
                .with_int_ops(2)
                .with_mem(MemRef::load(
                    "gpvol",
                    self.addr.local,
                    self.local_affine_terms(self.layout.gpvol, 0, 5, &[(0, 1)]),
                ))
                .with_mem(MemRef::load(
                    "tau",
                    self.addr.local,
                    self.local_affine_terms(self.layout.tau, 0, 5, &[(0, 1)]),
                ))
                .with_mem(MemRef::load(
                    "elauu",
                    self.addr.local,
                    self.local_affine_terms(self.layout.elauu, 0, 5, &[(3, PNODE), (4, 1)]),
                ))
                .with_mem(MemRef::store(
                    "elauu",
                    self.addr.local,
                    self.local_affine_terms(self.layout.elauu, 0, 5, &[(3, PNODE), (4, 1)]),
                ));
            for d in 0..NDIME {
                conv_mat = conv_mat.with_mem(MemRef::load(
                    "gpcar_b",
                    self.addr.local,
                    self.local_affine_terms(
                        self.layout.gpcar,
                        d,
                        5,
                        &[(0, PNODE * NDIME), (4, NDIME)],
                    ),
                ));
            }
            let ivect_mat = Loop::new("ivect_mat", 5, trip).with_stmt(conv_mat);
            let jnode = Loop::new("jnode", 4, TripCount::Const(PNODE)).with_loop(ivect_mat);
            let inode_mat = Loop::new("inode_mat", 3, TripCount::Const(PNODE)).with_loop(jnode);
            matrix_items.push(LoopItem::Loop(inode_mat));
        }

        let mut igaus = Loop::new("igaus", 0, TripCount::Const(PGAUS)).with_loop(inode_res);
        for item in matrix_items {
            igaus.body.push(item);
        }
        LoopNest::new("phase6_convective", vec![LoopItem::Loop(igaus)], 6)
    }

    // ----------------------------------------------------------------- phase 7

    /// Phase 7: viscous residual and (semi-implicit) viscous + mass matrix.
    fn phase7(&self, chunk: &ElementChunk) -> LoopNest {
        let vs = chunk.len;
        let trip = TripCount::Const(vs);
        let mut visc_rhs = Statement::new("viscous_residual")
            .with_flops(VectorOp::Fma, 9)
            .with_flops(VectorOp::Mul, 6)
            .with_flops(VectorOp::Add, 3)
            .with_int_ops(2)
            .with_mem(MemRef::load(
                "gpvol",
                self.addr.local,
                self.local_affine_terms(self.layout.gpvol, 0, 2, &[(0, 1)]),
            ));
        for d in 0..NDIME {
            visc_rhs = visc_rhs
                .with_mem(MemRef::load(
                    "gpcar",
                    self.addr.local,
                    self.local_affine_terms(
                        self.layout.gpcar,
                        d,
                        2,
                        &[(0, PNODE * NDIME), (1, NDIME)],
                    ),
                ))
                .with_mem(MemRef::load(
                    "elrbu",
                    self.addr.local,
                    self.local_affine_terms(self.layout.elrbu, d, 2, &[(1, NDIME)]),
                ))
                .with_mem(MemRef::store(
                    "elrbu",
                    self.addr.local,
                    self.local_affine_terms(self.layout.elrbu, d, 2, &[(1, NDIME)]),
                ));
        }
        for k in 0..NDIME * NDIME {
            visc_rhs = visc_rhs.with_mem(MemRef::load(
                "gpgve",
                self.addr.local,
                self.local_affine_terms(self.layout.gpgve, k, 2, &[(0, NDIME * NDIME)]),
            ));
        }
        let ivect_rhs = Loop::new("ivect_visc", 2, trip).with_stmt(visc_rhs);
        let inode_rhs = Loop::new("inode_visc", 1, TripCount::Const(PNODE)).with_loop(ivect_rhs);

        let mut igaus = Loop::new("igaus", 0, TripCount::Const(PGAUS)).with_loop(inode_rhs);

        if self.config.semi_implicit {
            let mut visc_mat = Statement::new("viscous_mass_matrix")
                .with_flops(VectorOp::Fma, 4)
                .with_flops(VectorOp::Mul, 3)
                .with_flops(VectorOp::Add, 1)
                .with_int_ops(2)
                .with_mem(MemRef::load(
                    "gpvol",
                    self.addr.local,
                    self.local_affine_terms(self.layout.gpvol, 0, 5, &[(0, 1)]),
                ))
                .with_mem(MemRef::load(
                    "elauu",
                    self.addr.local,
                    self.local_affine_terms(self.layout.elauu, 0, 5, &[(3, PNODE), (4, 1)]),
                ))
                .with_mem(MemRef::store(
                    "elauu",
                    self.addr.local,
                    self.local_affine_terms(self.layout.elauu, 0, 5, &[(3, PNODE), (4, 1)]),
                ));
            for d in 0..NDIME {
                visc_mat = visc_mat
                    .with_mem(MemRef::load(
                        "gpcar_a",
                        self.addr.local,
                        self.local_affine_terms(
                            self.layout.gpcar,
                            d,
                            5,
                            &[(0, PNODE * NDIME), (3, NDIME)],
                        ),
                    ))
                    .with_mem(MemRef::load(
                        "gpcar_b",
                        self.addr.local,
                        self.local_affine_terms(
                            self.layout.gpcar,
                            d,
                            5,
                            &[(0, PNODE * NDIME), (4, NDIME)],
                        ),
                    ));
            }
            let ivect_mat = Loop::new("ivect_vmat", 5, trip).with_stmt(visc_mat);
            let jnode = Loop::new("jnode_v", 4, TripCount::Const(PNODE)).with_loop(ivect_mat);
            let inode_mat = Loop::new("inode_vmat", 3, TripCount::Const(PNODE)).with_loop(jnode);
            igaus.body.push(LoopItem::Loop(inode_mat));
        }

        LoopNest::new("phase7_viscous", vec![LoopItem::Loop(igaus)], 6)
    }

    // ----------------------------------------------------------------- phase 8

    /// Phase 8: validity check and scatter into the global RHS / matrix.
    /// Indexed stores with potential write conflicts keep it scalar on every
    /// platform and at every optimization level.
    fn phase8(&self, chunk: &ElementChunk) -> LoopNest {
        let first = chunk.first_element;
        let check = Statement::new("check_valid_element").with_int_ops(4).not_vectorizable();

        let mut scatter_rhs = Statement::new("scatter_rhs")
            .with_flops(VectorOp::Add, (PNODE * NDIME) as u32)
            .with_int_ops((PNODE * NDIME) as u32)
            .not_vectorizable();
        for a in 0..PNODE {
            for d in 0..NDIME {
                scatter_rhs = scatter_rhs
                    .with_mem(MemRef::load(
                        "elrbu",
                        self.addr.local,
                        self.local_affine(self.layout.elrbu, a * NDIME + d, 0),
                    ))
                    .with_mem(MemRef::store(
                        "rhs",
                        self.addr.rhs,
                        IndexExpr::Indirect {
                            table: Arc::clone(&self.lnods),
                            table_index: AffineExpr::term(0, PNODE as i64)
                                .plus_const((first * PNODE + a) as i64),
                            scale: NDIME as i64,
                            offset: AffineExpr::constant(d as i64),
                        },
                    ));
            }
        }

        let mut items = vec![];
        let mut ivect = Loop::new("ivect", 0, TripCount::Const(chunk.len))
            .with_stmt(check)
            .with_stmt(scatter_rhs);

        if self.config.semi_implicit {
            // Matrix scatter: one read-modify-write of the global CSR values
            // per (inode, jnode) pair, addressed through the connectivity
            // (approximated as row-major blocks of 32 entries per row).
            let mut scatter_mat = Statement::new("scatter_matrix")
                .with_flops(VectorOp::Add, (PNODE * PNODE) as u32)
                .with_int_ops((PNODE * PNODE) as u32)
                .not_vectorizable();
            for a in 0..PNODE {
                for b in 0..PNODE {
                    scatter_mat = scatter_mat
                        .with_mem(MemRef::load(
                            "elauu",
                            self.addr.local,
                            self.local_affine(self.layout.elauu, a * PNODE + b, 0),
                        ))
                        .with_mem(MemRef::store(
                            "matrix",
                            self.addr.matrix,
                            IndexExpr::Indirect {
                                table: Arc::clone(&self.lnods),
                                table_index: AffineExpr::term(0, PNODE as i64)
                                    .plus_const((first * PNODE + a) as i64),
                                scale: 32,
                                offset: AffineExpr::constant(b as i64),
                            },
                        ));
                }
            }
            ivect = ivect.with_stmt(scatter_mat);
        }

        items.push(LoopItem::Loop(ivect));
        LoopNest::new("phase8_scatter", items, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phases::flops_per_element;
    use lv_compiler::vectorizer::Vectorizer;
    use lv_mesh::structured::BoxMeshBuilder;

    fn builder(vs: usize, opt: OptLevel) -> (WorkloadBuilder, ElementChunk) {
        let mesh = BoxMeshBuilder::new(6, 6, 6).build();
        let config = KernelConfig::new(vs, opt);
        let chunk = ElementChunk { first_element: 0, len: vs, vector_size: vs };
        (WorkloadBuilder::new(&mesh, config), chunk)
    }

    #[test]
    fn all_eight_phases_are_described() {
        let (b, chunk) = builder(64, OptLevel::Original);
        let nests = b.phase_nests(&chunk);
        assert_eq!(nests.len(), 8);
        for (i, (phase, nest)) in nests.iter().enumerate() {
            assert_eq!(*phase, PhaseId::new(i as u8 + 1));
            assert!(nest.count_statements() > 0, "{} has no statements", nest.name);
        }
    }

    #[test]
    fn original_gather_phases_do_not_vectorize() {
        let (b, chunk) = builder(240, OptLevel::Original);
        let vec = Vectorizer::new(256);
        for (phase, nest) in b.phase_nests(&chunk) {
            let plan = vec.plan(&nest);
            match phase.number().unwrap() {
                1 | 2 | 8 => assert!(
                    !plan.any_vectorized(),
                    "phase {phase:?} must stay scalar in the original code"
                ),
                _ => assert!(plan.any_vectorized(), "phase {phase:?} should vectorize"),
            }
        }
    }

    #[test]
    fn vec2_vectorizes_phase2_with_short_vectors() {
        let (b, chunk) = builder(240, OptLevel::Vec2);
        let vec = Vectorizer::new(256);
        let nests = b.phase_nests(&chunk);
        let (_, phase2) = &nests[1];
        let plan = vec.plan(phase2);
        assert!(plan.any_vectorized());
        // The vectorized loop is the 4-iteration idof loop (AVL = 4).
        let vectorized_chunks: Vec<_> = plan
            .decisions
            .values()
            .filter(|d| d.is_vectorized())
            .flat_map(|d| d.chunks().to_vec())
            .collect();
        assert_eq!(vectorized_chunks, vec![NDOFN]);
    }

    #[test]
    fn ivec2_vectorizes_phase2_with_full_vectors() {
        let (b, chunk) = builder(240, OptLevel::IVec2);
        let vec = Vectorizer::new(256);
        let nests = b.phase_nests(&chunk);
        let (_, phase2) = &nests[1];
        let plan = vec.plan(phase2);
        let vectorized_chunks: Vec<_> = plan
            .decisions
            .values()
            .filter(|d| d.is_vectorized())
            .flat_map(|d| d.chunks().to_vec())
            .collect();
        assert_eq!(vectorized_chunks, vec![240]);
    }

    #[test]
    fn vec1_distributes_phase1_and_vectorizes_the_gather_half() {
        let (b, chunk) = builder(128, OptLevel::Vec1);
        let vec = Vectorizer::new(256);
        let nests = b.phase_nests(&chunk);
        let (_, phase1) = &nests[0];
        assert_eq!(phase1.all_loops().len(), 2, "phase 1 must be distributed");
        let plan = vec.plan(phase1);
        let vectorized: Vec<_> = plan.decisions.values().filter(|d| d.is_vectorized()).collect();
        assert_eq!(vectorized.len(), 1, "exactly the work-B loop vectorizes");
        assert_eq!(vectorized[0].chunks(), &[128]);
    }

    #[test]
    fn phase8_never_vectorizes() {
        for opt in OptLevel::ALL {
            let (b, chunk) = builder(256, opt);
            let nests = b.phase_nests(&chunk);
            let (_, phase8) = &nests[7];
            assert!(!Vectorizer::new(256).plan(phase8).any_vectorized());
        }
    }

    #[test]
    fn workload_flops_match_numeric_kernel_within_tolerance() {
        // The loop-nest descriptors must perform (approximately) the same
        // floating-point work as the numeric kernel: within 20% per element.
        let (b, chunk) = builder(64, OptLevel::Original);
        let total: f64 = b.phase_nests(&chunk).iter().map(|(_, nest)| nest.total_flops()).sum();
        let per_element = total / 64.0;
        let numeric = flops_per_element(true);
        let ratio = per_element / numeric;
        assert!(
            (0.8..1.2).contains(&ratio),
            "workload {per_element} flops/elem vs numeric {numeric} (ratio {ratio:.2})"
        );
    }

    #[test]
    fn phase6_is_the_heaviest_phase() {
        let (b, chunk) = builder(64, OptLevel::Original);
        let nests = b.phase_nests(&chunk);
        let flops: Vec<f64> = nests.iter().map(|(_, n)| n.total_flops()).collect();
        let p6 = flops[5];
        for (i, f) in flops.iter().enumerate() {
            if i != 5 {
                assert!(p6 >= *f, "phase 6 ({p6}) must be at least phase {} ({f})", i + 1);
            }
        }
    }

    #[test]
    fn gather_phases_are_data_movement_dominated() {
        // Phases 1 and 2 execute (almost) no floating-point work: phase 2 is
        // pure data movement and phase 1 only carries the tiny
        // characteristic-length computation of its non-vectorizable half.
        let (b, chunk) = builder(64, OptLevel::Original);
        let nests = b.phase_nests(&chunk);
        let p1 = nests[0].1.total_flops();
        let p6 = nests[5].1.total_flops();
        assert!(p1 < 0.01 * p6, "phase 1 flops {p1} should be negligible vs phase 6 {p6}");
        assert_eq!(nests[1].1.total_flops(), 0.0, "phase 2 is pure data movement");
    }

    #[test]
    fn explicit_scheme_drops_matrix_work() {
        let mesh = BoxMeshBuilder::new(4, 4, 4).build();
        let chunk = ElementChunk { first_element: 0, len: 16, vector_size: 16 };
        let semi = WorkloadBuilder::new(&mesh, KernelConfig::new(16, OptLevel::Original));
        let expl = WorkloadBuilder::new(
            &mesh,
            KernelConfig::new(16, OptLevel::Original).explicit_scheme(),
        );
        let f = |b: &WorkloadBuilder| -> f64 {
            b.phase_nests(&chunk).iter().map(|(_, n)| n.total_flops()).sum()
        };
        assert!(f(&semi) > f(&expl));
    }
}
