//! The simulated mini-app: runs the eight phases of the assembly kernel on
//! the `lv-sim` machine model by compiling the workload loop nests with the
//! `lv-compiler` auto-vectorizer model and emitting the resulting instruction
//! streams.
//!
//! One [`SimulatedMiniApp::run`] corresponds to one execution of the mini-app
//! on one platform: the same mesh sweep the numeric path performs, but
//! producing per-phase hardware counters (cycles, instruction mix, AVL, cache
//! misses) instead of numbers — exactly the observables the paper's tables
//! and figures are built from.

use crate::config::KernelConfig;
use crate::workload::WorkloadBuilder;
use lv_compiler::codegen::{emit_loop_nest, CodegenStats};
use lv_compiler::vectorizer::{Remark, Vectorizer};
use lv_mesh::chunks::ElementChunks;
use lv_mesh::Mesh;
use lv_sim::counters::{HwCounters, PhaseId};
use lv_sim::engine::{Machine, MachineConfig};
use lv_sim::platform::Platform;

/// Result of one simulated mini-app execution.
#[derive(Debug, Clone)]
pub struct MiniAppRun {
    /// Platform the run was simulated on.
    pub platform: Platform,
    /// Kernel configuration (VECTOR_SIZE, optimization level, scheme).
    pub config: KernelConfig,
    /// Whether auto-vectorization was enabled.
    pub vectorized: bool,
    /// Per-phase hardware counters.
    pub counters: HwCounters,
    /// Compiler remarks of the first chunk (identical for every full chunk).
    pub remarks: Vec<Remark>,
    /// Code-generation statistics accumulated over the whole run.
    pub codegen: CodegenStats,
    /// Number of elements processed.
    pub elements: usize,
}

impl MiniAppRun {
    /// Total simulated cycles.
    pub fn total_cycles(&self) -> f64 {
        self.counters.total_cycles()
    }

    /// Cycles spent in one phase.
    pub fn phase_cycles(&self, phase: PhaseId) -> f64 {
        self.counters.phase(phase).cycles
    }

    /// Speed-up of this run relative to another run of the same workload.
    pub fn speedup_over(&self, baseline: &MiniAppRun) -> f64 {
        baseline.total_cycles() / self.total_cycles()
    }
}

/// The simulated mini-app bound to a mesh and a configuration.
#[derive(Debug, Clone)]
pub struct SimulatedMiniApp {
    config: KernelConfig,
    chunks: ElementChunks,
    builder: WorkloadBuilder,
    elements: usize,
}

impl SimulatedMiniApp {
    /// Creates a simulated mini-app for `mesh` under `config`.
    pub fn new(mesh: &Mesh, config: KernelConfig) -> Self {
        let problems = config.validate();
        assert!(problems.is_empty(), "invalid kernel configuration: {problems:?}");
        SimulatedMiniApp {
            config,
            chunks: ElementChunks::new(mesh, config.vector_size),
            builder: WorkloadBuilder::new(mesh, config),
            elements: mesh.num_elements(),
        }
    }

    /// The kernel configuration.
    pub fn config(&self) -> &KernelConfig {
        &self.config
    }

    /// Number of kernel calls (`VECTOR_SIZE` blocks).
    pub fn num_chunks(&self) -> usize {
        self.chunks.num_chunks()
    }

    /// Runs the mini-app on `platform` with auto-vectorization enabled or
    /// disabled, using the default machine configuration (cache model on,
    /// trace off).
    pub fn run(&self, platform: Platform, vectorize: bool) -> MiniAppRun {
        self.run_with(platform, vectorize, MachineConfig::default())
    }

    /// Runs the mini-app with an explicit simulator configuration (used by
    /// the trace example and the cache-ablation bench).
    pub fn run_with(
        &self,
        platform: Platform,
        vectorize: bool,
        machine_config: MachineConfig,
    ) -> MiniAppRun {
        let vectorizer =
            if vectorize { Vectorizer::new(platform.vlmax) } else { Vectorizer::disabled() };
        let mut machine = Machine::with_config(platform, machine_config);
        let mut remarks: Vec<Remark> = Vec::new();
        let mut codegen = CodegenStats::default();

        for (chunk_idx, chunk) in self.chunks.iter().enumerate() {
            for (phase, nest) in self.builder.phase_nests(chunk) {
                let plan = vectorizer.plan(&nest);
                if chunk_idx == 0 {
                    remarks.extend(plan.remarks.iter().cloned());
                }
                machine.begin_phase(phase);
                let stats = emit_loop_nest(&mut machine, &nest, &plan);
                codegen.merge(stats);
                machine.end_phase();
            }
        }

        MiniAppRun {
            platform,
            config: self.config,
            vectorized: vectorize,
            counters: machine.into_counters(),
            remarks,
            codegen,
            elements: self.elements,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptLevel;
    use lv_mesh::structured::BoxMeshBuilder;
    use lv_sim::platform::Platform;

    fn mesh() -> Mesh {
        // Small mesh: keeps the scalar simulation fast in debug test builds
        // while still spanning several chunks for the small VECTOR_SIZEs.
        BoxMeshBuilder::new(5, 5, 5).build() // 125 elements
    }

    fn run(vs: usize, opt: OptLevel, vectorize: bool) -> MiniAppRun {
        let m = mesh();
        let app = SimulatedMiniApp::new(&m, KernelConfig::new(vs, opt));
        app.run(Platform::riscv_vec(), vectorize)
    }

    #[test]
    fn scalar_run_has_no_vector_instructions() {
        let r = run(16, OptLevel::Original, false);
        assert_eq!(r.counters.total().vector_instructions, 0);
        assert!(r.counters.total().instructions > 0);
        assert!(!r.vectorized);
        assert_eq!(r.elements, 125);
    }

    #[test]
    fn vectorized_run_emits_vector_instructions_and_is_faster() {
        let scalar = run(64, OptLevel::Original, false);
        let vector = run(64, OptLevel::Original, true);
        assert!(vector.counters.total().vector_instructions > 0);
        assert!(
            vector.total_cycles() < scalar.total_cycles(),
            "vectorized {} should beat scalar {}",
            vector.total_cycles(),
            scalar.total_cycles()
        );
        assert!(vector.speedup_over(&scalar) > 1.5);
    }

    #[test]
    fn all_phases_record_cycles() {
        let r = run(64, OptLevel::Original, true);
        for phase in PhaseId::ALL {
            assert!(r.phase_cycles(phase) > 0.0, "{phase:?} recorded no cycles");
        }
    }

    #[test]
    fn flops_are_independent_of_vectorization_and_variant() {
        let a = run(64, OptLevel::Original, false);
        let b = run(64, OptLevel::Original, true);
        let c = run(64, OptLevel::Vec1, true);
        let fa = a.counters.total().flops;
        let fb = b.counters.total().flops;
        let fc = c.counters.total().flops;
        assert!((fa - fb).abs() / fa < 1e-9, "scalar {fa} vs vector {fb}");
        assert!((fa - fc).abs() / fa < 1e-9, "original {fa} vs VEC1 {fc}");
    }

    #[test]
    fn phase2_avl_matches_the_paper_story() {
        // VEC2: AVL of phase 2 ≈ 4;  IVEC2: AVL = VECTOR_SIZE (capped at 125
        // elements here the last chunk is shorter, so compare ranges).
        let vec2 = run(64, OptLevel::Vec2, true);
        let ivec2 = run(64, OptLevel::IVec2, true);
        let p2 = PhaseId::new(2);
        let avl_vec2 = vec2.counters.phase(p2).avg_vector_length();
        let avl_ivec2 = ivec2.counters.phase(p2).avg_vector_length();
        assert!((avl_vec2 - 4.0).abs() < 0.5, "VEC2 AVL = {avl_vec2}");
        assert!(avl_ivec2 > 50.0, "IVEC2 AVL = {avl_ivec2}");
    }

    #[test]
    fn ivec2_is_faster_than_vec2_in_phase2() {
        let original = run(64, OptLevel::Original, true);
        let vec2 = run(64, OptLevel::Vec2, true);
        let ivec2 = run(64, OptLevel::IVec2, true);
        let p2 = PhaseId::new(2);
        // The paper: enabling vectorization of phase 2 with AVL 4 (VEC2) is
        // counter-productive; the interchange (IVEC2) makes it much faster
        // than both.
        assert!(vec2.phase_cycles(p2) > original.phase_cycles(p2));
        assert!(ivec2.phase_cycles(p2) < original.phase_cycles(p2));
        assert!(ivec2.phase_cycles(p2) < vec2.phase_cycles(p2));
    }

    #[test]
    fn vec1_speeds_up_phase1() {
        let ivec2 = run(64, OptLevel::IVec2, true);
        let vec1 = run(64, OptLevel::Vec1, true);
        let p1 = PhaseId::new(1);
        assert!(vec1.phase_cycles(p1) < ivec2.phase_cycles(p1));
    }

    #[test]
    fn remarks_are_collected() {
        let r = run(64, OptLevel::Original, true);
        assert!(!r.remarks.is_empty());
        assert!(r.remarks.iter().any(|rm| rm.vectorized));
        assert!(r.remarks.iter().any(|rm| !rm.vectorized));
    }

    #[test]
    fn chunk_count_follows_vector_size() {
        let m = mesh();
        let app = SimulatedMiniApp::new(&m, KernelConfig::new(16, OptLevel::Original));
        assert_eq!(app.num_chunks(), 8); // ceil(125 / 16)
        let app = SimulatedMiniApp::new(&m, KernelConfig::new(240, OptLevel::Original));
        assert_eq!(app.num_chunks(), 1);
    }
}
