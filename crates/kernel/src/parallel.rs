//! Mesh-colored multi-threaded assembly on the shared worker pool.
//!
//! The parallel sweep processes the colors of a [`ColoredChunks`] schedule
//! sequentially and the chunks *within* a color concurrently: the coloring
//! guarantees that no two chunks of a color share a mesh node, so every
//! thread scatters into disjoint rows of the global CSR matrix and disjoint
//! entries of the RHS — no atomics, no locks, no reduction buffers.
//!
//! Each worker owns one [`ElementWorkspace`] for the whole sweep (the
//! "workhorse collection" idiom, one per thread) and runs the slice-view
//! phases on its chunks.  The sweep runs as **one job on an
//! [`lv_runtime::Team`]** — the persistent pool the Krylov solvers share —
//! with [`Team::barrier`] separating the colors (every scatter of color `c`
//! must land before any chunk of color `c+1` starts).  A time-step loop
//! spawns its workers once and reuses them for every assembly *and* every
//! solve; the per-sweep `std::thread::scope` spawn of PR 2 is gone.  The
//! unsafe disjoint-row scatter is isolated in [`SharedSystem`] with the
//! coloring invariant spelled out.
//!
//! ## Determinism
//!
//! The schedule (color order, chunk order within a color, slot order within
//! a chunk) is fixed, the chunk→worker split is the static
//! [`lv_runtime::partition`], and concurrent chunks touch disjoint
//! accumulators, so the result is **bitwise identical for every thread
//! count**.  With respect to the *mesh-order serial* sweep the colored
//! schedule permutes the element order, which changes the floating-point
//! summation order: results agree to rounding accuracy (~1e-12 relative),
//! not bit for bit — the same trade every colored/atomic-free assembly
//! makes (OP2, Alya's own OpenMP path).

use crate::config::KernelConfig;
use crate::phases;
use crate::workspace::ElementWorkspace;
use crate::NDIME;
use lv_mesh::coloring::ColoredChunks;
use lv_mesh::{Field, Mesh, ShapeTable, VectorField};
use lv_runtime::{partition, SharedSliceMut, Team};
use lv_solver::CsrMatrix;

/// Order-of-magnitude model of the assembly work per element: 8 Gauss
/// points × 8 nodes across the seven numeric phases.  Used only for the
/// telemetry roofline (a fixed structural count, deterministic across
/// thread counts) — never for scheduling.
pub(crate) const ASSEMBLY_FLOPS_PER_ELEMENT: u64 = 9_600;
/// Bytes moved per element by the gather + scatter phases (coordinates,
/// unknowns, the 8×8 block and the RHS), same modeling caveat as above.
pub(crate) const ASSEMBLY_BYTES_PER_ELEMENT: u64 = 1_472;

/// Per-worker partial assembly statistics.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct WorkerStats {
    pub chunks: usize,
    pub elements: usize,
    pub singular_jacobians: usize,
}

/// A `Sync` view of the global system (CSR values + RHS) that workers
/// scatter into concurrently.
///
/// # Safety invariant
///
/// All concurrent users must write disjoint entries.  The colored schedule
/// guarantees this: within one color no two chunks share a mesh node, hence
/// no two workers touch the same matrix row or RHS entry.  Cross-color
/// writes are ordered by the per-color `Barrier` in the sweep.
struct SharedSystem<'a> {
    row_ptr: &'a [usize],
    col_idx: &'a [usize],
    values: *mut f64,
    rhs: *mut f64,
}

// SAFETY: the raw pointers are only dereferenced under the disjoint-row
// invariant documented on the type; the shared pattern slices are plain
// `&[usize]`.
unsafe impl Sync for SharedSystem<'_> {}

impl SharedSystem<'_> {
    /// Adds a batch of entries of one row (`values[i]` to `(row, cols[i])`),
    /// amortizing the row-pointer lookup across the batch — the shared-view
    /// mirror of [`CsrMatrix::add_row`].
    ///
    /// # Safety
    /// The caller must hold "ownership" of `row` under the coloring
    /// invariant (no concurrent writer touches the same row), and every
    /// `(row, cols[i])` must be part of the sparsity pattern.
    #[inline]
    unsafe fn add_row(&self, row: usize, cols: &[usize], values: &[f64]) {
        debug_assert_eq!(cols.len(), values.len());
        let start = self.row_ptr[row];
        let end = self.row_ptr[row + 1];
        let row_cols = &self.col_idx[start..end];
        for (&col, &value) in cols.iter().zip(values) {
            match row_cols.binary_search(&col) {
                // SAFETY: `start + k` indexes inside the values allocation
                // (pattern and values have equal length by construction),
                // and the row is not concurrently written (caller
                // contract).
                Ok(k) => unsafe { *self.values.add(start + k) += value },
                Err(_) => panic!("entry ({row}, {col}) not present in the sparsity pattern"),
            }
        }
    }

    /// Adds `value` to RHS entry `i` under the same ownership contract as
    /// [`add_row`](Self::add_row).
    #[inline]
    unsafe fn add_rhs(&self, i: usize, value: f64) {
        // SAFETY: `i < NDIME * num_nodes` (checked by the driver) and the
        // node is not concurrently written (caller contract).
        unsafe { *self.rhs.add(i) += value };
    }
}

/// Phase 8 against the shared system: identical traversal to
/// [`phases::phase8_scatter_slices`], writing through the disjoint-row view.
fn scatter_shared(
    mesh: &Mesh,
    config: &KernelConfig,
    v: &crate::workspace::WorkspaceViewsMut,
    system: &SharedSystem<'_>,
) {
    use crate::PNODE;
    let vs = v.vs;
    for iv in 0..vs {
        let Some(elem) = v.element_ids[iv] else { continue };
        let nodes = mesh.element_nodes(elem);
        for (inode, &node_a) in nodes.iter().enumerate() {
            let node_a = node_a as usize;
            for idime in 0..NDIME {
                // SAFETY: this worker owns every node of `elem` within the
                // current color (coloring invariant).
                unsafe {
                    system
                        .add_rhs(NDIME * node_a + idime, v.elrbu[(inode * NDIME + idime) * vs + iv])
                };
            }
            if config.semi_implicit {
                let mut cols = [0usize; PNODE];
                let mut vals = [0.0f64; PNODE];
                for (jnode, &node_b) in nodes.iter().enumerate() {
                    cols[jnode] = node_b as usize;
                    vals[jnode] = v.elauu[(inode * PNODE + jnode) * vs + iv];
                }
                // SAFETY: as above — row `node_a` belongs to this worker.
                unsafe { system.add_row(node_a, &cols, &vals) };
            }
        }
    }
}

/// Runs the slice-view phases 1–7 plus the shared scatter for one colored
/// chunk.
#[allow(clippy::too_many_arguments)]
fn assemble_chunk_shared(
    mesh: &Mesh,
    shape: &ShapeTable,
    config: &KernelConfig,
    h_char: f64,
    velocity: &VectorField,
    pressure: &Field,
    slots: lv_mesh::ChunkSlots<'_>,
    ws: &mut ElementWorkspace,
    system: &SharedSystem<'_>,
) -> usize {
    ws.reset();
    let mut v = ws.views_mut();
    phases::phase1_gather_coords_slices(mesh, &slots, &mut v);
    phases::phase2_gather_unknowns_slices(mesh, velocity, pressure, &slots, &mut v);
    let singular = phases::phase3_jacobian_slices(shape, &mut v);
    phases::phase4_gauss_values_slices(shape, &mut v);
    phases::phase5_stabilization_slices(config, h_char, &mut v);
    phases::phase6_convective_slices(shape, config, &mut v);
    phases::phase7_viscous_slices(shape, config, &mut v);
    scatter_shared(mesh, config, &v, system);
    singular
}

/// The colored parallel sweep on a worker team: processes every color of
/// `schedule` sequentially, splitting the chunks of each color across the
/// workers' workspaces (rank `w` of `team` drives `workspaces[w]`).
///
/// The number of assembling workers is `min(team.num_threads(),
/// workspaces.len())`; surplus team ranks only keep the color barriers
/// balanced.  `matrix` and `rhs` are scattered into without zeroing — the
/// caller owns the lifecycle, exactly like the serial `assemble_into`
/// internals.
#[allow(clippy::too_many_arguments)]
pub(crate) fn colored_sweep(
    team: &Team,
    mesh: &Mesh,
    shape: &ShapeTable,
    config: &KernelConfig,
    velocity: &VectorField,
    pressure: &Field,
    schedule: &ColoredChunks,
    workspaces: &mut [ElementWorkspace],
    matrix: &mut CsrMatrix,
    rhs: &mut [f64],
) -> WorkerStats {
    assert!(!workspaces.is_empty(), "the parallel sweep needs at least one workspace");
    assert_eq!(rhs.len(), NDIME * mesh.num_nodes());
    for ws in workspaces.iter() {
        assert_eq!(ws.vector_size(), schedule.vector_size());
    }
    let h_char = mesh.characteristic_length();
    let (row_ptr, col_idx, values) = matrix.pattern_and_values_mut();
    let system =
        SharedSystem { row_ptr, col_idx, values: values.as_mut_ptr(), rhs: rhs.as_mut_ptr() };

    let mut stats = WorkerStats::default();
    let num_workers = team.num_threads().min(workspaces.len());
    let num_colors = schedule.num_colors();
    let trace = team.trace();
    // The whole-sweep span is a *logical* (deterministic) record: element
    // and color counts are properties of the schedule, not of the split.
    let sweep_span = trace.map(|t| t.span(lv_trace::spans::ASSEMBLY_COLOR_SWEEP, 0));
    if num_workers == 1 {
        // Single worker: identical schedule, no reason to pay the dispatch.
        let ws = &mut workspaces[0];
        for color in 0..num_colors {
            let chunk_span = trace.map(|t| t.span(lv_trace::spans::ASSEMBLY_CHUNK, 0));
            let before = stats.elements;
            for chunk_id in schedule.color_chunks(color) {
                let slots = schedule.slots(chunk_id);
                stats.singular_jacobians += assemble_chunk_shared(
                    mesh, shape, config, h_char, velocity, pressure, slots, ws, &system,
                );
                stats.chunks += 1;
                stats.elements += slots.len();
            }
            if let Some(s) = chunk_span {
                s.iters((stats.elements - before) as u64).aux(color as u64).finish();
            }
        }
    } else {
        // One job on the team for the whole sweep; `team.barrier()` separates
        // the colors (every scatter of color c must land before any chunk of
        // color c+1 starts).  A rank whose contiguous share of a color is empty
        // — or that has no workspace at all — still waits at each barrier.
        let mut partials = vec![WorkerStats::default(); num_workers];
        let partials_shared = SharedSliceMut::new(&mut partials);
        let workspaces_shared = SharedSliceMut::new(&mut workspaces[..num_workers]);
        team.run(&|rank| {
            if rank >= num_workers {
                for _ in 0..num_colors {
                    team.barrier();
                }
                return;
            }
            // SAFETY: rank indices are unique, so each rank gets exclusive
            // access to its own workspace and stats slot.
            let ws = unsafe { workspaces_shared.index_mut(rank) };
            let partial = unsafe { partials_shared.index_mut(rank) };
            for color in 0..num_colors {
                // Per-rank, per-color event (host-dependent: the count
                // scales with the worker count).  Finished before the
                // barrier so the recorded time is compute, not waiting.
                let chunk_span =
                    trace.map(|t| t.span(lv_trace::spans::ASSEMBLY_CHUNK, rank as u16));
                let before = partial.elements;
                let chunk_ids = schedule.color_chunks(color);
                // Static contiguous split of the color's chunks across the
                // workers (same split for every run => deterministic).
                let share = partition(chunk_ids.len(), num_workers, rank);
                for chunk_id in chunk_ids.start + share.start..chunk_ids.start + share.end {
                    let slots = schedule.slots(chunk_id);
                    partial.singular_jacobians += assemble_chunk_shared(
                        mesh, shape, config, h_char, velocity, pressure, slots, ws, &system,
                    );
                    partial.chunks += 1;
                    partial.elements += slots.len();
                }
                if let Some(s) = chunk_span {
                    s.iters((partial.elements - before) as u64).aux(color as u64).finish();
                }
                team.barrier();
            }
        });
        for partial in partials {
            stats.chunks += partial.chunks;
            stats.elements += partial.elements;
            stats.singular_jacobians += partial.singular_jacobians;
        }
    }
    if let Some(s) = sweep_span {
        s.iters(stats.elements as u64)
            .flops(stats.elements as u64 * ASSEMBLY_FLOPS_PER_ELEMENT)
            .bytes(stats.elements as u64 * ASSEMBLY_BYTES_PER_ELEMENT)
            .aux(num_colors as u64)
            .finish();
    }
    stats
}
