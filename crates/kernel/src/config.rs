//! Kernel configuration: physical parameters, the `VECTOR_SIZE` blocking
//! parameter and the cumulative code-optimization levels of the paper.

use serde::{Deserialize, Serialize};

/// The `VECTOR_SIZE` values studied in the paper (re-exported from
/// `lv-mesh` for convenience).
pub use lv_mesh::chunks::PAPER_VECTOR_SIZES;

/// The cumulative code-optimization levels applied to the mini-app in
/// Section 4 of the paper.  Each level includes all previous ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OptLevel {
    /// The original mini-app source, unchanged.
    Original,
    /// **VEC2**: the `VECTOR_DIM` dummy argument of the gather routine is
    /// replaced by a compile-time constant, which lets the auto-vectorizer
    /// vectorize phase 2 — over its short innermost loop (AVL ≈ 4), which is
    /// counter-productive.
    Vec2,
    /// **IVEC2**: on top of VEC2, the phase-2 loop nest is interchanged so
    /// the `VECTOR_SIZE` dimension is innermost and vector instructions use
    /// the full vector length.
    IVec2,
    /// **VEC1**: on top of IVEC2, the phase-1 loop is distributed so its
    /// vectorizable half (work B) runs with vector instructions.
    Vec1,
}

impl OptLevel {
    /// All levels in the cumulative order of the paper.
    pub const ALL: [OptLevel; 4] =
        [OptLevel::Original, OptLevel::Vec2, OptLevel::IVec2, OptLevel::Vec1];

    /// Name used in figures and reports.
    pub const fn name(self) -> &'static str {
        match self {
            OptLevel::Original => "Original",
            OptLevel::Vec2 => "VEC2",
            OptLevel::IVec2 => "IVEC2",
            OptLevel::Vec1 => "VEC1",
        }
    }

    /// Whether this level includes the VEC2 compile-time trip-count fix.
    pub const fn has_vec2(self) -> bool {
        !matches!(self, OptLevel::Original)
    }

    /// Whether this level includes the IVEC2 loop interchange.
    pub const fn has_ivec2(self) -> bool {
        matches!(self, OptLevel::IVec2 | OptLevel::Vec1)
    }

    /// Whether this level includes the VEC1 loop distribution.
    pub const fn has_vec1(self) -> bool {
        matches!(self, OptLevel::Vec1)
    }
}

/// Configuration of one assembly run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelConfig {
    /// Number of elements processed per kernel call (`VECTOR_SIZE`).
    pub vector_size: usize,
    /// Code-optimization level.
    pub opt_level: OptLevel,
    /// Kinematic viscosity ν.
    pub viscosity: f64,
    /// Fluid density ρ.
    pub density: f64,
    /// Time-step size used by the time-integration arrays of phase 5.
    pub dt: f64,
    /// Whether the semi-implicit scheme is used; if so, phase 7 also
    /// assembles the elemental viscous matrices (the paper: "element matrices
    /// are computed only if the semi-implicit numerical scheme is
    /// considered").
    pub semi_implicit: bool,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            vector_size: 240,
            opt_level: OptLevel::Vec1,
            viscosity: 1e-2,
            density: 1.0,
            dt: 1e-2,
            semi_implicit: true,
        }
    }
}

impl KernelConfig {
    /// A configuration with the given `VECTOR_SIZE` and optimization level
    /// and default physics.
    pub fn new(vector_size: usize, opt_level: OptLevel) -> Self {
        KernelConfig { vector_size, opt_level, ..Default::default() }
    }

    /// Builder: sets the viscosity.
    pub fn with_viscosity(mut self, nu: f64) -> Self {
        assert!(nu > 0.0, "viscosity must be positive");
        self.viscosity = nu;
        self
    }

    /// Builder: sets the density.
    pub fn with_density(mut self, rho: f64) -> Self {
        assert!(rho > 0.0, "density must be positive");
        self.density = rho;
        self
    }

    /// Builder: sets the time step.
    pub fn with_dt(mut self, dt: f64) -> Self {
        assert!(dt > 0.0, "time step must be positive");
        self.dt = dt;
        self
    }

    /// Builder: selects the explicit scheme (no elemental matrices in
    /// phase 7).
    pub fn explicit_scheme(mut self) -> Self {
        self.semi_implicit = false;
        self
    }

    /// Validates the configuration, returning a list of problems (empty when
    /// valid).
    // `!(x > 0.0)` is deliberate: it reports NaN parameters as invalid, which
    // `x <= 0.0` would silently accept.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.vector_size == 0 {
            problems.push("VECTOR_SIZE must be positive".to_string());
        }
        if !(self.viscosity > 0.0) {
            problems.push("viscosity must be positive".to_string());
        }
        if !(self.density > 0.0) {
            problems.push("density must be positive".to_string());
        }
        if !(self.dt > 0.0) {
            problems.push("time step must be positive".to_string());
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opt_levels_are_cumulative() {
        assert!(!OptLevel::Original.has_vec2());
        assert!(OptLevel::Vec2.has_vec2());
        assert!(!OptLevel::Vec2.has_ivec2());
        assert!(OptLevel::IVec2.has_vec2());
        assert!(OptLevel::IVec2.has_ivec2());
        assert!(!OptLevel::IVec2.has_vec1());
        assert!(OptLevel::Vec1.has_vec2());
        assert!(OptLevel::Vec1.has_ivec2());
        assert!(OptLevel::Vec1.has_vec1());
    }

    #[test]
    fn opt_level_ordering_matches_paper_sequence() {
        assert!(OptLevel::Original < OptLevel::Vec2);
        assert!(OptLevel::Vec2 < OptLevel::IVec2);
        assert!(OptLevel::IVec2 < OptLevel::Vec1);
        assert_eq!(OptLevel::ALL.len(), 4);
        assert_eq!(OptLevel::Vec1.name(), "VEC1");
    }

    #[test]
    fn default_config_is_valid() {
        assert!(KernelConfig::default().validate().is_empty());
        assert_eq!(KernelConfig::default().vector_size, 240);
    }

    #[test]
    fn builders_apply() {
        let c = KernelConfig::new(64, OptLevel::Original)
            .with_viscosity(0.5)
            .with_density(2.0)
            .with_dt(0.1)
            .explicit_scheme();
        assert_eq!(c.vector_size, 64);
        assert_eq!(c.opt_level, OptLevel::Original);
        assert_eq!(c.viscosity, 0.5);
        assert_eq!(c.density, 2.0);
        assert_eq!(c.dt, 0.1);
        assert!(!c.semi_implicit);
        assert!(c.validate().is_empty());
    }

    #[test]
    fn invalid_config_is_reported() {
        let c = KernelConfig { vector_size: 0, viscosity: -1.0, ..KernelConfig::default() };
        let problems = c.validate();
        assert_eq!(problems.len(), 2);
    }

    #[test]
    #[should_panic]
    fn negative_viscosity_rejected_by_builder() {
        let _ = KernelConfig::default().with_viscosity(-1.0);
    }
}
