//! Numeric implementation of the eight phases of the Nastin assembly
//! mini-app.
//!
//! Each function corresponds to one instrumented phase of the paper and
//! operates on the [`ElementWorkspace`] of the current `VECTOR_SIZE` block.
//! The physics is a standard SUPG-stabilized incompressible Navier–Stokes
//! momentum assembly on trilinear hexahedra:
//!
//! * phases 1–2 gather nodal coordinates and unknowns into the block-local
//!   arrays (pure data movement, no FLOPs — exactly as the paper notes);
//! * phase 3 computes the Jacobian of the isoparametric map, its determinant
//!   and inverse, and the Cartesian shape-function derivatives `gpcar`;
//! * phase 4 interpolates velocity and velocity gradient at the integration
//!   points;
//! * phase 5 evaluates the SUPG stabilization parameter `τ` and the
//!   advection velocity;
//! * phase 6 accumulates the convective (plus SUPG perturbation) term into
//!   the elemental RHS — the FLOP-heaviest phase;
//! * phase 7 accumulates the viscous term into the elemental RHS and, for
//!   the semi-implicit scheme, the elemental viscous/mass matrix;
//! * phase 8 checks element validity (padding slots of the last block) and
//!   scatters the elemental contributions into the global CSR matrix and RHS.

use crate::config::KernelConfig;
use crate::workspace::ElementWorkspace;
use crate::{NDIME, PGAUS, PNODE};
use lv_mesh::chunks::ElementChunk;
use lv_mesh::geometry::Mat3;
use lv_mesh::{Field, Mesh, ShapeTable, VectorField};
use lv_solver::CsrMatrix;

/// Phase 1: gather the element connectivity and nodal coordinates of every
/// element of the chunk into `elcod`.
///
/// Work A (connectivity handling and slot bookkeeping) and work B (the
/// coordinate gather proper) are the two halves the VEC1 optimization later
/// splits into separate loops.
pub fn phase1_gather_coords(mesh: &Mesh, chunk: &ElementChunk, ws: &mut ElementWorkspace) {
    // Work A: element ids and connectivity bookkeeping.
    for ivect in 0..chunk.vector_size {
        ws.set_element_id(ivect, chunk.element(ivect));
    }
    // Work B: coordinate gather (indexed reads from the global mesh arrays).
    let coords = mesh.coords();
    for ivect in 0..chunk.vector_size {
        if let Some(elem) = chunk.element(ivect) {
            let nodes = mesh.element_nodes(elem);
            for (inode, &node) in nodes.iter().enumerate() {
                let base = 3 * node as usize;
                for idime in 0..NDIME {
                    ws.set_elcod(inode, idime, ivect, coords[base + idime]);
                }
            }
        } else {
            // Padding slots replicate the last valid element's geometry so
            // phases 3–7 never divide by a zero Jacobian; phase 8 discards
            // their contributions.
            for inode in 0..PNODE {
                for idime in 0..NDIME {
                    ws.set_elcod(inode, idime, ivect, ws.elcod(inode, idime, chunk.len - 1));
                }
            }
        }
    }
}

/// Phase 2: gather the nodal unknowns (three velocity components and the
/// pressure) of every element of the chunk into `elvel`.
pub fn phase2_gather_unknowns(
    mesh: &Mesh,
    velocity: &VectorField,
    pressure: &Field,
    chunk: &ElementChunk,
    ws: &mut ElementWorkspace,
) {
    let vel = velocity.as_slice();
    let pre = pressure.as_slice();
    for ivect in 0..chunk.vector_size {
        let elem = chunk.element(ivect).unwrap_or(chunk.first_element + chunk.len - 1);
        let nodes = mesh.element_nodes(elem);
        for (inode, &node) in nodes.iter().enumerate() {
            let node = node as usize;
            for idime in 0..NDIME {
                ws.set_elvel(inode, idime, ivect, vel[NDIME * node + idime]);
            }
            ws.set_elvel(inode, NDIME, ivect, pre[node]);
        }
    }
}

/// Phase 3: Jacobian, determinant, inverse and Cartesian derivatives at every
/// integration point.
///
/// Returns the number of elements whose Jacobian was singular (should be zero
/// for a valid mesh).
pub fn phase3_jacobian(
    shape: &ShapeTable,
    chunk: &ElementChunk,
    ws: &mut ElementWorkspace,
) -> usize {
    debug_assert_eq!(shape.num_gauss(), PGAUS);
    let mut singular = 0usize;
    for igaus in 0..PGAUS {
        let derivs = shape.derivatives(igaus);
        for ivect in 0..chunk.vector_size {
            // J[i][j] = Σ_a ∂N_a/∂ξ_j · x_a[i]
            let mut jac = Mat3::ZERO;
            for inode in 0..PNODE {
                let d = derivs.d[inode];
                for i in 0..NDIME {
                    let xi = ws.elcod(inode, i, ivect);
                    for (j, &dj) in d.iter().enumerate() {
                        jac.m[i][j] += dj * xi;
                    }
                }
            }
            let det = jac.det();
            let weight = 1.0; // 2×2×2 Gauss weights are all 1
            ws.set_gpvol(igaus, ivect, det.abs() * weight);
            let Some(inv) = jac.inverse() else {
                singular += 1;
                continue;
            };
            // ∂N_a/∂x_i = Σ_j ∂N_a/∂ξ_j · (J⁻¹)[j][i]
            for inode in 0..PNODE {
                let d = derivs.d[inode];
                for i in 0..NDIME {
                    let mut v = 0.0;
                    for (j, &dj) in d.iter().enumerate() {
                        v += dj * inv.m[j][i];
                    }
                    ws.set_gpcar(igaus, inode, i, ivect, v);
                }
            }
        }
    }
    singular
}

/// Phase 4: velocity and velocity gradient at the integration points.
pub fn phase4_gauss_values(shape: &ShapeTable, chunk: &ElementChunk, ws: &mut ElementWorkspace) {
    for igaus in 0..PGAUS {
        let funcs = shape.functions(igaus);
        // Zero the accumulators for this integration point.
        for ivect in 0..chunk.vector_size {
            for i in 0..NDIME {
                ws.set_gpvel(igaus, i, ivect, 0.0);
                for j in 0..NDIME {
                    ws.set_gpgve(igaus, i, j, ivect, 0.0);
                }
            }
        }
        for inode in 0..PNODE {
            let n_a = funcs.n[inode];
            for ivect in 0..chunk.vector_size {
                for i in 0..NDIME {
                    let u_ai = ws.elvel(inode, i, ivect);
                    ws.add_gpvel(igaus, i, ivect, n_a * u_ai);
                    for j in 0..NDIME {
                        let dn_aj = ws.gpcar(igaus, inode, j, ivect);
                        ws.add_gpgve(igaus, i, j, ivect, dn_aj * u_ai);
                    }
                }
            }
        }
    }
}

/// Phase 5: stabilization parameter τ and advection velocity at the
/// integration points.
pub fn phase5_stabilization(
    config: &KernelConfig,
    h_char: f64,
    chunk: &ElementChunk,
    ws: &mut ElementWorkspace,
) {
    let nu = config.viscosity;
    let rho = config.density;
    let inv_dt = 1.0 / config.dt;
    for igaus in 0..PGAUS {
        for ivect in 0..chunk.vector_size {
            let u =
                [ws.gpvel(igaus, 0, ivect), ws.gpvel(igaus, 1, ivect), ws.gpvel(igaus, 2, ivect)];
            let unorm = (u[0] * u[0] + u[1] * u[1] + u[2] * u[2]).sqrt();
            // Classic SUPG design: τ = (c1 ν/h² + c2 |u|/h + ρ/Δt)⁻¹.
            let tau = 1.0 / (4.0 * nu / (h_char * h_char) + 2.0 * unorm / h_char + rho * inv_dt);
            ws.set_tau(igaus, ivect, tau);
            for (i, &ui) in u.iter().enumerate() {
                ws.set_gpadv(igaus, i, ivect, ui);
            }
        }
    }
}

/// Phase 6: convective term (Galerkin + SUPG perturbation) contribution to
/// the elemental RHS — the FLOP-dominant phase of the mini-app.
pub fn phase6_convective(
    shape: &ShapeTable,
    config: &KernelConfig,
    chunk: &ElementChunk,
    ws: &mut ElementWorkspace,
) {
    let rho = config.density;
    for igaus in 0..PGAUS {
        let funcs = shape.functions(igaus);
        for inode in 0..PNODE {
            let n_a = funcs.n[inode];
            for ivect in 0..chunk.vector_size {
                let vol = ws.gpvol(igaus, ivect);
                let tau = ws.tau(igaus, ivect);
                // conv_a = (u·∇)N_a
                let mut conv_a = 0.0;
                for j in 0..NDIME {
                    conv_a += ws.gpadv(igaus, j, ivect) * ws.gpcar(igaus, inode, j, ivect);
                }
                // (u·∇)u_i at the integration point, per component.
                for i in 0..NDIME {
                    let mut ugradu_i = 0.0;
                    for j in 0..NDIME {
                        ugradu_i += ws.gpadv(igaus, j, ivect) * ws.gpgve(igaus, i, j, ivect);
                    }
                    // Galerkin convective residual + SUPG perturbation.
                    let galerkin = rho * n_a * ugradu_i;
                    let supg = rho * tau * conv_a * ugradu_i;
                    ws.add_elrbu(inode, i, ivect, -vol * (galerkin + supg));
                }
                // Semi-implicit scheme: the (SUPG-stabilized) convection
                // operator also contributes to the elemental matrix.  This is
                // the bulk of the arithmetic of the phase, which is why the
                // paper finds phase 6 to be the most cycle-consuming one.
                if config.semi_implicit {
                    for jnode in 0..PNODE {
                        let mut conv_b = 0.0;
                        for j in 0..NDIME {
                            conv_b += ws.gpadv(igaus, j, ivect) * ws.gpcar(igaus, jnode, j, ivect);
                        }
                        let galerkin = n_a * conv_b;
                        let supg = tau * conv_a * conv_b;
                        ws.add_elauu(inode, jnode, ivect, vol * rho * (galerkin + supg));
                    }
                }
            }
        }
    }
}

/// Phase 7: viscous term contribution to the elemental RHS and (for the
/// semi-implicit scheme) the elemental matrix, plus the lumped mass/Δt
/// diagonal that makes the assembled operator well conditioned.
pub fn phase7_viscous(
    shape: &ShapeTable,
    config: &KernelConfig,
    chunk: &ElementChunk,
    ws: &mut ElementWorkspace,
) {
    let nu = config.viscosity;
    let rho = config.density;
    let inv_dt = 1.0 / config.dt;
    for igaus in 0..PGAUS {
        let funcs = shape.functions(igaus);
        for inode in 0..PNODE {
            let n_a = funcs.n[inode];
            for ivect in 0..chunk.vector_size {
                let vol = ws.gpvol(igaus, ivect);
                // RHS: -ν ∇N_a : ∇u
                for i in 0..NDIME {
                    let mut visc = 0.0;
                    for j in 0..NDIME {
                        visc += ws.gpcar(igaus, inode, j, ivect) * ws.gpgve(igaus, i, j, ivect);
                    }
                    ws.add_elrbu(inode, i, ivect, -vol * nu * visc);
                }
                if config.semi_implicit {
                    // Matrix: ν ∇N_a·∇N_b  +  (ρ/Δt) N_a N_b (lumped on the row).
                    for jnode in 0..PNODE {
                        let mut diff = 0.0;
                        for j in 0..NDIME {
                            diff +=
                                ws.gpcar(igaus, inode, j, ivect) * ws.gpcar(igaus, jnode, j, ivect);
                        }
                        let mass = rho * inv_dt * n_a * funcs.n[jnode];
                        ws.add_elauu(inode, jnode, ivect, vol * (nu * diff + mass));
                    }
                }
            }
        }
    }
}

/// Phase 8: validity check and scatter of the elemental contributions into
/// the global CSR matrix and RHS vector.
///
/// The RHS has `NDIME` entries per node (`rhs[NDIME*node + idime]`); the
/// matrix is the scalar (per-component) operator on the node-to-node graph,
/// applied identically to each velocity component.
pub fn phase8_scatter(
    mesh: &Mesh,
    config: &KernelConfig,
    chunk: &ElementChunk,
    ws: &ElementWorkspace,
    matrix: &mut CsrMatrix,
    rhs: &mut [f64],
) {
    assert_eq!(rhs.len(), NDIME * mesh.num_nodes());
    for ivect in 0..chunk.vector_size {
        // The validity check of the paper: padding slots are skipped.
        let Some(elem) = ws.element_id(ivect) else { continue };
        let nodes = mesh.element_nodes(elem);
        for (inode, &node_a) in nodes.iter().enumerate() {
            let node_a = node_a as usize;
            for idime in 0..NDIME {
                rhs[NDIME * node_a + idime] += ws.elrbu(inode, idime, ivect);
            }
            if config.semi_implicit {
                for (jnode, &node_b) in nodes.iter().enumerate() {
                    matrix.add(node_a, node_b as usize, ws.elauu(inode, jnode, ivect));
                }
            }
        }
    }
}

/// Analytic FLOP count of one element's assembly (phases 3–7), used by tests
/// and by the roofline-style reporting in the experiment driver.
pub fn flops_per_element(semi_implicit: bool) -> f64 {
    let p3 = PGAUS as f64
        * (PNODE as f64 * (NDIME * NDIME * 2) as f64   // Jacobian accumulation (FMA)
            + 45.0                                      // det + inverse
            + PNODE as f64 * (NDIME * NDIME * 2) as f64 // gpcar
            + 1.0);
    let p4 = PGAUS as f64 * PNODE as f64 * (NDIME as f64 * 2.0 + (NDIME * NDIME * 2) as f64);
    let p5 = PGAUS as f64 * 16.0;
    let p6_rhs = PGAUS as f64
        * PNODE as f64
        * ((NDIME * 2) as f64 + NDIME as f64 * ((NDIME * 2) as f64 + 7.0));
    let p6_mat = if semi_implicit {
        PGAUS as f64 * PNODE as f64 * PNODE as f64 * ((NDIME * 2) as f64 + 5.0)
    } else {
        0.0
    };
    let p6 = p6_rhs + p6_mat;
    let p7_rhs = PGAUS as f64 * PNODE as f64 * NDIME as f64 * ((NDIME * 2) as f64 + 3.0);
    let p7_mat = if semi_implicit {
        PGAUS as f64 * PNODE as f64 * PNODE as f64 * ((NDIME * 2) as f64 + 6.0)
    } else {
        0.0
    };
    let p8 = PNODE as f64 * NDIME as f64 + if semi_implicit { (PNODE * PNODE) as f64 } else { 0.0 };
    p3 + p4 + p5 + p6 + p7_rhs + p7_mat + p8
}

#[cfg(test)]
mod tests {
    use super::*;
    use lv_mesh::quadrature::GaussRule;
    use lv_mesh::structured::BoxMeshBuilder;
    use lv_mesh::ElementKind;

    fn setup(
        nelem_per_side: usize,
        vs: usize,
    ) -> (Mesh, ShapeTable, ElementChunk, ElementWorkspace) {
        let mesh = BoxMeshBuilder::new(nelem_per_side, nelem_per_side, nelem_per_side)
            .lid_driven_cavity()
            .build();
        let shape = ShapeTable::new(ElementKind::Hex8, &GaussRule::hex_2x2x2());
        let chunk =
            ElementChunk { first_element: 0, len: vs.min(mesh.num_elements()), vector_size: vs };
        let ws = ElementWorkspace::new(vs);
        (mesh, shape, chunk, ws)
    }

    #[test]
    fn phase1_gathers_the_right_coordinates() {
        let (mesh, _, chunk, mut ws) = setup(3, 8);
        phase1_gather_coords(&mesh, &chunk, &mut ws);
        for ivect in 0..chunk.len {
            let elem = chunk.element(ivect).unwrap();
            let nodes = mesh.element_nodes(elem);
            for (inode, &node) in nodes.iter().enumerate() {
                let p = mesh.node_coords(node as usize);
                for d in 0..NDIME {
                    assert_eq!(ws.elcod(inode, d, ivect), p[d]);
                }
            }
        }
    }

    #[test]
    fn phase2_gathers_velocity_and_pressure() {
        let (mesh, _, chunk, mut ws) = setup(3, 8);
        let vel = VectorField::taylor_green(&mesh);
        let pre = Field::from_fn(&mesh, |p| p.x + 2.0 * p.y);
        phase2_gather_unknowns(&mesh, &vel, &pre, &chunk, &mut ws);
        let elem = 3;
        let node = mesh.element_nodes(elem)[5] as usize;
        assert_eq!(ws.elvel(5, 0, 3), vel.get(node).x);
        assert_eq!(ws.elvel(5, 2, 3), vel.get(node).z);
        assert_eq!(ws.elvel(5, NDIME, 3), pre.value(node));
    }

    #[test]
    fn phase3_volume_sums_to_element_volume() {
        let (mesh, shape, chunk, mut ws) = setup(4, 16);
        phase1_gather_coords(&mesh, &chunk, &mut ws);
        let singular = phase3_jacobian(&shape, &chunk, &mut ws);
        assert_eq!(singular, 0);
        for ivect in 0..chunk.len {
            let elem = chunk.element(ivect).unwrap();
            let vol: f64 = (0..PGAUS).map(|g| ws.gpvol(g, ivect)).sum();
            assert!((vol - mesh.element_volume(elem)).abs() < 1e-12);
        }
    }

    #[test]
    fn phase3_cartesian_derivatives_reproduce_linear_gradient() {
        // For the unit-cube structured mesh, a linear field f = 2x - y + 3z
        // must have gradient (2, -1, 3) when differentiated with gpcar.
        let (mesh, shape, chunk, mut ws) = setup(3, 4);
        phase1_gather_coords(&mesh, &chunk, &mut ws);
        phase3_jacobian(&shape, &chunk, &mut ws);
        let ivect = 1;
        let elem = chunk.element(ivect).unwrap();
        let nodes = mesh.element_nodes(elem);
        let nodal: Vec<f64> = nodes
            .iter()
            .map(|&n| {
                let p = mesh.node_coords(n as usize);
                2.0 * p.x - p.y + 3.0 * p.z
            })
            .collect();
        for igaus in 0..PGAUS {
            let expect = [2.0, -1.0, 3.0];
            for (d, &expected) in expect.iter().enumerate() {
                let grad: f64 = (0..PNODE).map(|a| ws.gpcar(igaus, a, d, ivect) * nodal[a]).sum();
                assert!((grad - expected).abs() < 1e-10, "igaus {igaus} dim {d}: {grad}");
            }
        }
    }

    #[test]
    fn phase4_interpolates_constant_velocity_exactly() {
        let (mesh, shape, chunk, mut ws) = setup(3, 4);
        let vel = VectorField::constant(&mesh, lv_mesh::Vec3::new(1.5, -0.5, 2.0));
        let pre = Field::zeros(&mesh);
        phase1_gather_coords(&mesh, &chunk, &mut ws);
        phase2_gather_unknowns(&mesh, &vel, &pre, &chunk, &mut ws);
        phase3_jacobian(&shape, &chunk, &mut ws);
        phase4_gauss_values(&shape, &chunk, &mut ws);
        for igaus in 0..PGAUS {
            assert!((ws.gpvel(igaus, 0, 0) - 1.5).abs() < 1e-12);
            assert!((ws.gpvel(igaus, 1, 0) + 0.5).abs() < 1e-12);
            assert!((ws.gpvel(igaus, 2, 0) - 2.0).abs() < 1e-12);
            // A constant field has zero gradient.
            for i in 0..NDIME {
                for j in 0..NDIME {
                    assert!(ws.gpgve(igaus, i, j, 0).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn phase5_tau_is_positive_and_bounded_by_dt() {
        let (mesh, shape, chunk, mut ws) = setup(3, 4);
        let config = KernelConfig::default();
        let vel = VectorField::taylor_green(&mesh);
        let pre = Field::zeros(&mesh);
        phase1_gather_coords(&mesh, &chunk, &mut ws);
        phase2_gather_unknowns(&mesh, &vel, &pre, &chunk, &mut ws);
        phase3_jacobian(&shape, &chunk, &mut ws);
        phase4_gauss_values(&shape, &chunk, &mut ws);
        phase5_stabilization(&config, mesh.characteristic_length(), &chunk, &mut ws);
        for igaus in 0..PGAUS {
            for ivect in 0..chunk.len {
                let tau = ws.tau(igaus, ivect);
                assert!(tau > 0.0);
                assert!(tau <= config.dt / config.density + 1e-12);
            }
        }
    }

    #[test]
    fn convective_residual_vanishes_for_zero_velocity() {
        let (mesh, shape, chunk, mut ws) = setup(3, 4);
        let config = KernelConfig::default();
        let vel = VectorField::zeros(&mesh);
        let pre = Field::zeros(&mesh);
        phase1_gather_coords(&mesh, &chunk, &mut ws);
        phase2_gather_unknowns(&mesh, &vel, &pre, &chunk, &mut ws);
        phase3_jacobian(&shape, &chunk, &mut ws);
        phase4_gauss_values(&shape, &chunk, &mut ws);
        phase5_stabilization(&config, mesh.characteristic_length(), &chunk, &mut ws);
        phase6_convective(&shape, &config, &chunk, &mut ws);
        for ivect in 0..chunk.len {
            for a in 0..PNODE {
                for d in 0..NDIME {
                    assert_eq!(ws.elrbu(a, d, ivect), 0.0);
                }
            }
        }
    }

    #[test]
    fn viscous_matrix_row_sums_vanish_and_diagonal_is_positive() {
        // ∇N_a·∇N_b row-sums vanish because Σ_b N_b = 1; with the mass term
        // the row sum equals the lumped mass (positive).
        let (mesh, shape, chunk, mut ws) = setup(3, 4);
        let config = KernelConfig::default();
        let vel = VectorField::zeros(&mesh);
        let pre = Field::zeros(&mesh);
        phase1_gather_coords(&mesh, &chunk, &mut ws);
        phase2_gather_unknowns(&mesh, &vel, &pre, &chunk, &mut ws);
        phase3_jacobian(&shape, &chunk, &mut ws);
        phase4_gauss_values(&shape, &chunk, &mut ws);
        phase5_stabilization(&config, mesh.characteristic_length(), &chunk, &mut ws);
        phase7_viscous(&shape, &config, &chunk, &mut ws);
        let elem_vol = mesh.element_volume(0);
        let expected_mass = config.density / config.dt * elem_vol;
        for a in 0..PNODE {
            assert!(ws.elauu(a, a, 0) > 0.0);
        }
        let total: f64 = (0..PNODE)
            .flat_map(|a| (0..PNODE).map(move |b| (a, b)))
            .map(|(a, b)| ws.elauu(a, b, 0))
            .sum();
        // Total of the matrix = ∫ ρ/Δt (Σ_a N_a)(Σ_b N_b) = ρ/Δt · |element|.
        assert!((total - expected_mass).abs() < 1e-9, "total {total} vs {expected_mass}");
    }

    #[test]
    fn phase8_skips_padding_and_conserves_rhs_sum() {
        let (mesh, shape, chunk, mut ws) = setup(3, 32); // 27 elements, 5 padding slots
        let config = KernelConfig::default();
        let vel = VectorField::taylor_green(&mesh);
        let pre = Field::zeros(&mesh);
        phase1_gather_coords(&mesh, &chunk, &mut ws);
        phase2_gather_unknowns(&mesh, &vel, &pre, &chunk, &mut ws);
        phase3_jacobian(&shape, &chunk, &mut ws);
        phase4_gauss_values(&shape, &chunk, &mut ws);
        phase5_stabilization(&config, mesh.characteristic_length(), &chunk, &mut ws);
        phase6_convective(&shape, &config, &chunk, &mut ws);
        phase7_viscous(&shape, &config, &chunk, &mut ws);

        let (row_ptr, col_idx) = mesh.node_graph_csr();
        let mut matrix = CsrMatrix::from_pattern(row_ptr, col_idx);
        let mut rhs = vec![0.0; NDIME * mesh.num_nodes()];
        phase8_scatter(&mesh, &config, &chunk, &ws, &mut matrix, &mut rhs);

        // The global RHS total equals the sum of the valid elemental RHS
        // entries (padding contributes nothing).
        let elemental_total: f64 = (0..chunk.len)
            .flat_map(|iv| (0..PNODE).map(move |a| (iv, a)))
            .flat_map(|(iv, a)| (0..NDIME).map(move |d| (iv, a, d)))
            .map(|(iv, a, d)| ws.elrbu(a, d, iv))
            .sum();
        let global_total: f64 = rhs.iter().sum();
        assert!((elemental_total - global_total).abs() < 1e-9);
        assert!(matrix.frobenius_norm() > 0.0);
    }

    #[test]
    fn flops_per_element_is_a_few_thousand() {
        let f = flops_per_element(true);
        assert!(f > 3000.0 && f < 30_000.0, "flops/element = {f}");
        assert!(flops_per_element(false) < f);
    }
}
