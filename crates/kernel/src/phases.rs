//! Numeric implementation of the eight phases of the Nastin assembly
//! mini-app.
//!
//! Each function corresponds to one instrumented phase of the paper and
//! operates on the [`ElementWorkspace`] of the current `VECTOR_SIZE` block.
//! The physics is a standard SUPG-stabilized incompressible Navier–Stokes
//! momentum assembly on trilinear hexahedra:
//!
//! * phases 1–2 gather nodal coordinates and unknowns into the block-local
//!   arrays (pure data movement, no FLOPs — exactly as the paper notes);
//! * phase 3 computes the Jacobian of the isoparametric map, its determinant
//!   and inverse, and the Cartesian shape-function derivatives `gpcar`;
//! * phase 4 interpolates velocity and velocity gradient at the integration
//!   points;
//! * phase 5 evaluates the SUPG stabilization parameter `τ` and the
//!   advection velocity;
//! * phase 6 accumulates the convective (plus SUPG perturbation) term into
//!   the elemental RHS — the FLOP-heaviest phase;
//! * phase 7 accumulates the viscous term into the elemental RHS and, for
//!   the semi-implicit scheme, the elemental viscous/mass matrix;
//! * phase 8 checks element validity (padding slots of the last block) and
//!   scatters the elemental contributions into the global CSR matrix and RHS.

//! # The two numeric paths
//!
//! Every phase exists in two forms that must produce **bitwise identical**
//! results (the integration tests compare `f64::to_bits`):
//!
//! * the original **accessor path** (`phaseN_*`) reads and writes the
//!   workspace through the [`ElementWorkspace`] accessors — one multi-term
//!   index computation and one bounds check per scalar.  It is kept as the
//!   readable oracle;
//! * the **slice path** (`phaseN_*_slices`) operates on the contiguous
//!   array views of [`WorkspaceViewsMut`]: the index arithmetic is hoisted
//!   out of the `ivect` loops into per-row subslices, so the inner loops are
//!   pure unit-stride slice iteration the autovectorizer turns into vector
//!   loads/stores — the Rust analogue of the paper's unit-stride `ivect`
//!   refactors.  Floating-point reductions deliberately mirror the accessor
//!   path's accumulation order term by term (addition is not associative,
//!   and even `0.0 + x` is not a bitwise no-op when `x` is `-0.0`).
//!
//! The slice phases take any [`SlotMap`] (a contiguous mesh-order
//! [`ElementChunk`] or a colored [`lv_mesh::ChunkSlots`]), which is how the
//! same kernel serves both the serial sweep and the mesh-colored parallel
//! sweep.

use crate::config::KernelConfig;
use crate::workspace::{ElementWorkspace, WorkspaceViewsMut};
use crate::{NDIME, NDOFN, PGAUS, PNODE};
use lv_mesh::chunks::{ChunkSlots, ElementChunk};
use lv_mesh::geometry::Mat3;
use lv_mesh::{Field, Mesh, ShapeTable, VectorField};
use lv_solver::CsrMatrix;

/// Slot→element map of one kernel call.
///
/// Abstracts over *which* elements a `VECTOR_SIZE` block holds: the
/// contiguous mesh-order [`ElementChunk`] of the serial sweep and the
/// non-contiguous [`ChunkSlots`] of the colored parallel sweep.  The slice
/// phases are generic over this trait (monomorphized — no virtual dispatch
/// in the hot loops).
pub trait SlotMap {
    /// The padded block width (`VECTOR_SIZE`).
    fn vector_size(&self) -> usize;
    /// Number of valid slots (`≤ vector_size`).
    fn len(&self) -> usize;
    /// Whether the block holds no valid element (never true for blocks
    /// produced by the chunkers, which always carry ≥ 1 element).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Global element id of slot `i`, or `None` for padding slots.
    fn element(&self, i: usize) -> Option<usize>;
}

impl SlotMap for ElementChunk {
    #[inline]
    fn vector_size(&self) -> usize {
        self.vector_size
    }
    #[inline]
    fn len(&self) -> usize {
        self.len
    }
    #[inline]
    fn element(&self, i: usize) -> Option<usize> {
        ElementChunk::element(self, i)
    }
}

impl SlotMap for ChunkSlots<'_> {
    #[inline]
    fn vector_size(&self) -> usize {
        self.vector_size
    }
    #[inline]
    fn len(&self) -> usize {
        ChunkSlots::len(self)
    }
    #[inline]
    fn element(&self, i: usize) -> Option<usize> {
        ChunkSlots::element(self, i)
    }
}

/// The logical row `idx` of a flat `ivect`-fastest array: a unit-stride run
/// of `vs` values.
#[inline(always)]
fn row(a: &[f64], idx: usize, vs: usize) -> &[f64] {
    &a[idx * vs..(idx + 1) * vs]
}

/// Mutable counterpart of [`row`].
#[inline(always)]
fn row_mut(a: &mut [f64], idx: usize, vs: usize) -> &mut [f64] {
    &mut a[idx * vs..(idx + 1) * vs]
}

/// Phase 1: gather the element connectivity and nodal coordinates of every
/// element of the chunk into `elcod`.
///
/// Work A (connectivity handling and slot bookkeeping) and work B (the
/// coordinate gather proper) are the two halves the VEC1 optimization later
/// splits into separate loops.
pub fn phase1_gather_coords(mesh: &Mesh, chunk: &ElementChunk, ws: &mut ElementWorkspace) {
    // Work A: element ids and connectivity bookkeeping.
    for ivect in 0..chunk.vector_size {
        ws.set_element_id(ivect, chunk.element(ivect));
    }
    // Work B: coordinate gather (indexed reads from the global mesh arrays).
    let coords = mesh.coords();
    for ivect in 0..chunk.vector_size {
        if let Some(elem) = chunk.element(ivect) {
            let nodes = mesh.element_nodes(elem);
            for (inode, &node) in nodes.iter().enumerate() {
                let base = 3 * node as usize;
                for idime in 0..NDIME {
                    ws.set_elcod(inode, idime, ivect, coords[base + idime]);
                }
            }
        } else {
            // Padding slots replicate the last valid element's geometry so
            // phases 3–7 never divide by a zero Jacobian; phase 8 discards
            // their contributions.
            for inode in 0..PNODE {
                for idime in 0..NDIME {
                    ws.set_elcod(inode, idime, ivect, ws.elcod(inode, idime, chunk.len - 1));
                }
            }
        }
    }
}

/// Phase 2: gather the nodal unknowns (three velocity components and the
/// pressure) of every element of the chunk into `elvel`.
pub fn phase2_gather_unknowns(
    mesh: &Mesh,
    velocity: &VectorField,
    pressure: &Field,
    chunk: &ElementChunk,
    ws: &mut ElementWorkspace,
) {
    let vel = velocity.as_slice();
    let pre = pressure.as_slice();
    for ivect in 0..chunk.vector_size {
        let elem = chunk.element(ivect).unwrap_or(chunk.first_element + chunk.len - 1);
        let nodes = mesh.element_nodes(elem);
        for (inode, &node) in nodes.iter().enumerate() {
            let node = node as usize;
            for idime in 0..NDIME {
                ws.set_elvel(inode, idime, ivect, vel[NDIME * node + idime]);
            }
            ws.set_elvel(inode, NDIME, ivect, pre[node]);
        }
    }
}

/// Phase 3: Jacobian, determinant, inverse and Cartesian derivatives at every
/// integration point.
///
/// Returns the number of elements whose Jacobian was singular (should be zero
/// for a valid mesh).
pub fn phase3_jacobian(
    shape: &ShapeTable,
    chunk: &ElementChunk,
    ws: &mut ElementWorkspace,
) -> usize {
    debug_assert_eq!(shape.num_gauss(), PGAUS);
    let mut singular = 0usize;
    for igaus in 0..PGAUS {
        let derivs = shape.derivatives(igaus);
        for ivect in 0..chunk.vector_size {
            // J[i][j] = Σ_a ∂N_a/∂ξ_j · x_a[i]
            let mut jac = Mat3::ZERO;
            for inode in 0..PNODE {
                let d = derivs.d[inode];
                for i in 0..NDIME {
                    let xi = ws.elcod(inode, i, ivect);
                    for (j, &dj) in d.iter().enumerate() {
                        jac.m[i][j] += dj * xi;
                    }
                }
            }
            let det = jac.det();
            let weight = 1.0; // 2×2×2 Gauss weights are all 1
            ws.set_gpvol(igaus, ivect, det.abs() * weight);
            let Some(inv) = jac.inverse() else {
                singular += 1;
                // A singular slot has no Cartesian derivatives: zero them
                // instead of leaving whatever the previous chunk wrote (the
                // cheap `reset` no longer clears `gpcar`, and stale values
                // would make the result depend on the chunk schedule).
                for inode in 0..PNODE {
                    for i in 0..NDIME {
                        ws.set_gpcar(igaus, inode, i, ivect, 0.0);
                    }
                }
                continue;
            };
            // ∂N_a/∂x_i = Σ_j ∂N_a/∂ξ_j · (J⁻¹)[j][i]
            for inode in 0..PNODE {
                let d = derivs.d[inode];
                for i in 0..NDIME {
                    let mut v = 0.0;
                    for (j, &dj) in d.iter().enumerate() {
                        v += dj * inv.m[j][i];
                    }
                    ws.set_gpcar(igaus, inode, i, ivect, v);
                }
            }
        }
    }
    singular
}

/// Phase 4: velocity and velocity gradient at the integration points.
pub fn phase4_gauss_values(shape: &ShapeTable, chunk: &ElementChunk, ws: &mut ElementWorkspace) {
    for igaus in 0..PGAUS {
        let funcs = shape.functions(igaus);
        // Zero the accumulators for this integration point.
        for ivect in 0..chunk.vector_size {
            for i in 0..NDIME {
                ws.set_gpvel(igaus, i, ivect, 0.0);
                for j in 0..NDIME {
                    ws.set_gpgve(igaus, i, j, ivect, 0.0);
                }
            }
        }
        for inode in 0..PNODE {
            let n_a = funcs.n[inode];
            for ivect in 0..chunk.vector_size {
                for i in 0..NDIME {
                    let u_ai = ws.elvel(inode, i, ivect);
                    ws.add_gpvel(igaus, i, ivect, n_a * u_ai);
                    for j in 0..NDIME {
                        let dn_aj = ws.gpcar(igaus, inode, j, ivect);
                        ws.add_gpgve(igaus, i, j, ivect, dn_aj * u_ai);
                    }
                }
            }
        }
    }
}

/// Phase 5: stabilization parameter τ and advection velocity at the
/// integration points.
pub fn phase5_stabilization(
    config: &KernelConfig,
    h_char: f64,
    chunk: &ElementChunk,
    ws: &mut ElementWorkspace,
) {
    let nu = config.viscosity;
    let rho = config.density;
    let inv_dt = 1.0 / config.dt;
    for igaus in 0..PGAUS {
        for ivect in 0..chunk.vector_size {
            let u =
                [ws.gpvel(igaus, 0, ivect), ws.gpvel(igaus, 1, ivect), ws.gpvel(igaus, 2, ivect)];
            let unorm = (u[0] * u[0] + u[1] * u[1] + u[2] * u[2]).sqrt();
            // Classic SUPG design: τ = (c1 ν/h² + c2 |u|/h + ρ/Δt)⁻¹.
            let tau = 1.0 / (4.0 * nu / (h_char * h_char) + 2.0 * unorm / h_char + rho * inv_dt);
            ws.set_tau(igaus, ivect, tau);
            for (i, &ui) in u.iter().enumerate() {
                ws.set_gpadv(igaus, i, ivect, ui);
            }
        }
    }
}

/// Phase 6: convective term (Galerkin + SUPG perturbation) contribution to
/// the elemental RHS — the FLOP-dominant phase of the mini-app.
pub fn phase6_convective(
    shape: &ShapeTable,
    config: &KernelConfig,
    chunk: &ElementChunk,
    ws: &mut ElementWorkspace,
) {
    let rho = config.density;
    for igaus in 0..PGAUS {
        let funcs = shape.functions(igaus);
        for inode in 0..PNODE {
            let n_a = funcs.n[inode];
            for ivect in 0..chunk.vector_size {
                let vol = ws.gpvol(igaus, ivect);
                let tau = ws.tau(igaus, ivect);
                // conv_a = (u·∇)N_a
                let mut conv_a = 0.0;
                for j in 0..NDIME {
                    conv_a += ws.gpadv(igaus, j, ivect) * ws.gpcar(igaus, inode, j, ivect);
                }
                // (u·∇)u_i at the integration point, per component.
                for i in 0..NDIME {
                    let mut ugradu_i = 0.0;
                    for j in 0..NDIME {
                        ugradu_i += ws.gpadv(igaus, j, ivect) * ws.gpgve(igaus, i, j, ivect);
                    }
                    // Galerkin convective residual + SUPG perturbation.
                    let galerkin = rho * n_a * ugradu_i;
                    let supg = rho * tau * conv_a * ugradu_i;
                    ws.add_elrbu(inode, i, ivect, -vol * (galerkin + supg));
                }
                // Semi-implicit scheme: the (SUPG-stabilized) convection
                // operator also contributes to the elemental matrix.  This is
                // the bulk of the arithmetic of the phase, which is why the
                // paper finds phase 6 to be the most cycle-consuming one.
                if config.semi_implicit {
                    for jnode in 0..PNODE {
                        let mut conv_b = 0.0;
                        for j in 0..NDIME {
                            conv_b += ws.gpadv(igaus, j, ivect) * ws.gpcar(igaus, jnode, j, ivect);
                        }
                        let galerkin = n_a * conv_b;
                        let supg = tau * conv_a * conv_b;
                        ws.add_elauu(inode, jnode, ivect, vol * rho * (galerkin + supg));
                    }
                }
            }
        }
    }
}

/// Phase 7: viscous term contribution to the elemental RHS and (for the
/// semi-implicit scheme) the elemental matrix, plus the lumped mass/Δt
/// diagonal that makes the assembled operator well conditioned.
pub fn phase7_viscous(
    shape: &ShapeTable,
    config: &KernelConfig,
    chunk: &ElementChunk,
    ws: &mut ElementWorkspace,
) {
    let nu = config.viscosity;
    let rho = config.density;
    let inv_dt = 1.0 / config.dt;
    for igaus in 0..PGAUS {
        let funcs = shape.functions(igaus);
        for inode in 0..PNODE {
            let n_a = funcs.n[inode];
            for ivect in 0..chunk.vector_size {
                let vol = ws.gpvol(igaus, ivect);
                // RHS: -ν ∇N_a : ∇u
                for i in 0..NDIME {
                    let mut visc = 0.0;
                    for j in 0..NDIME {
                        visc += ws.gpcar(igaus, inode, j, ivect) * ws.gpgve(igaus, i, j, ivect);
                    }
                    ws.add_elrbu(inode, i, ivect, -vol * nu * visc);
                }
                if config.semi_implicit {
                    // Matrix: ν ∇N_a·∇N_b  +  (ρ/Δt) N_a N_b (lumped on the row).
                    for jnode in 0..PNODE {
                        let mut diff = 0.0;
                        for j in 0..NDIME {
                            diff +=
                                ws.gpcar(igaus, inode, j, ivect) * ws.gpcar(igaus, jnode, j, ivect);
                        }
                        let mass = rho * inv_dt * n_a * funcs.n[jnode];
                        ws.add_elauu(inode, jnode, ivect, vol * (nu * diff + mass));
                    }
                }
            }
        }
    }
}

/// Phase 8: validity check and scatter of the elemental contributions into
/// the global CSR matrix and RHS vector.
///
/// The RHS has `NDIME` entries per node (`rhs[NDIME*node + idime]`); the
/// matrix is the scalar (per-component) operator on the node-to-node graph,
/// applied identically to each velocity component.
pub fn phase8_scatter(
    mesh: &Mesh,
    config: &KernelConfig,
    chunk: &ElementChunk,
    ws: &ElementWorkspace,
    matrix: &mut CsrMatrix,
    rhs: &mut [f64],
) {
    assert_eq!(rhs.len(), NDIME * mesh.num_nodes());
    for ivect in 0..chunk.vector_size {
        // The validity check of the paper: padding slots are skipped.
        let Some(elem) = ws.element_id(ivect) else { continue };
        let nodes = mesh.element_nodes(elem);
        for (inode, &node_a) in nodes.iter().enumerate() {
            let node_a = node_a as usize;
            for idime in 0..NDIME {
                rhs[NDIME * node_a + idime] += ws.elrbu(inode, idime, ivect);
            }
            if config.semi_implicit {
                for (jnode, &node_b) in nodes.iter().enumerate() {
                    matrix.add(node_a, node_b as usize, ws.elauu(inode, jnode, ivect));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Slice path: unit-stride kernels over the contiguous workspace views.
// ---------------------------------------------------------------------------

/// Lanes per strip of the strip-mined phase 3: the Jacobian accumulators of
/// a strip (`9 × STRIP` doubles) live in registers/L1 while the `inode`
/// reduction runs over them with unit stride.
const STRIP: usize = 16;

/// Phase 1, slice path: gather element connectivity and nodal coordinates.
/// Work A (slot bookkeeping) and work B (the coordinate gather) stay split,
/// as in the paper's VEC1 loop distribution.
pub fn phase1_gather_coords_slices(mesh: &Mesh, slots: &impl SlotMap, v: &mut WorkspaceViewsMut) {
    let vs = v.vs;
    debug_assert_eq!(vs, slots.vector_size());
    // Work A: element ids and connectivity bookkeeping.
    for (iv, id) in v.element_ids.iter_mut().enumerate() {
        *id = slots.element(iv);
    }
    // Work B: coordinate gather (indexed reads from the global mesh arrays,
    // strided writes into the slot-fastest elcod rows).
    let coords = mesh.coords();
    let len = slots.len();
    for iv in 0..len {
        let elem = slots.element(iv).expect("slot < len is valid");
        let nodes = mesh.element_nodes(elem);
        for (inode, &node) in nodes.iter().enumerate() {
            let base = 3 * node as usize;
            for idime in 0..NDIME {
                v.elcod[(inode * NDIME + idime) * vs + iv] = coords[base + idime];
            }
        }
    }
    // Padding slots replicate the last valid element's geometry so phases
    // 3–7 never divide by a zero Jacobian; row-major order makes the
    // replication a unit-stride fill.
    if len < vs {
        for idx in 0..PNODE * NDIME {
            let r = row_mut(v.elcod, idx, vs);
            let src = r[len - 1];
            r[len..].fill(src);
        }
    }
}

/// Phase 2, slice path: gather the nodal unknowns (velocity + pressure).
pub fn phase2_gather_unknowns_slices(
    mesh: &Mesh,
    velocity: &VectorField,
    pressure: &Field,
    slots: &impl SlotMap,
    v: &mut WorkspaceViewsMut,
) {
    let vs = v.vs;
    let vel = velocity.as_slice();
    let pre = pressure.as_slice();
    let last = slots.element(slots.len() - 1).expect("chunks hold at least one element");
    for iv in 0..vs {
        let elem = slots.element(iv).unwrap_or(last);
        let nodes = mesh.element_nodes(elem);
        for (inode, &node) in nodes.iter().enumerate() {
            let node = node as usize;
            for idime in 0..NDIME {
                v.elvel[(inode * NDOFN + idime) * vs + iv] = vel[NDIME * node + idime];
            }
            v.elvel[(inode * NDOFN + NDIME) * vs + iv] = pre[node];
        }
    }
}

/// Phase 3, slice path: Jacobian, determinant, inverse and Cartesian
/// derivatives, strip-mined over the slots.
///
/// The `inode` reduction accumulates the nine Jacobian entries of a strip of
/// [`STRIP`] slots in unit-stride vector loops; the determinant/inverse is
/// inherently per-slot scalar work (exactly as the paper observes for its
/// phase 3); the `gpcar` back-substitution vectorizes again.
///
/// Returns the number of slots whose Jacobian was singular.
pub fn phase3_jacobian_slices(shape: &ShapeTable, v: &mut WorkspaceViewsMut) -> usize {
    debug_assert_eq!(shape.num_gauss(), PGAUS);
    let vs = v.vs;
    let mut singular = 0usize;
    for igaus in 0..PGAUS {
        let derivs = shape.derivatives(igaus);
        let mut s0 = 0usize;
        while s0 < vs {
            let sl = STRIP.min(vs - s0);
            // J[i][j] accumulation: unit stride over the strip lanes.
            let mut jac = [[0.0f64; STRIP]; NDIME * NDIME];
            for inode in 0..PNODE {
                let d = derivs.d[inode];
                for i in 0..NDIME {
                    let x = &row(v.elcod, inode * NDIME + i, vs)[s0..s0 + sl];
                    for (j, &dj) in d.iter().enumerate() {
                        let acc = &mut jac[i * NDIME + j][..sl];
                        for (a, &xv) in acc.iter_mut().zip(x) {
                            *a += dj * xv;
                        }
                    }
                }
            }
            // Determinant and inverse: per-lane scalar work.
            let mut inv = [[0.0f64; STRIP]; NDIME * NDIME];
            let mut ok = [true; STRIP];
            let mut all_ok = true;
            {
                let gpvol = &mut row_mut(v.gpvol, igaus, vs)[s0..s0 + sl];
                for (k, out) in gpvol.iter_mut().enumerate() {
                    let mut m = Mat3::ZERO;
                    for i in 0..NDIME {
                        for j in 0..NDIME {
                            m.m[i][j] = jac[i * NDIME + j][k];
                        }
                    }
                    let det = m.det();
                    let weight = 1.0; // 2×2×2 Gauss weights are all 1
                    *out = det.abs() * weight;
                    match m.inverse() {
                        Some(minv) => {
                            for i in 0..NDIME {
                                for j in 0..NDIME {
                                    inv[i * NDIME + j][k] = minv.m[i][j];
                                }
                            }
                        }
                        None => {
                            singular += 1;
                            ok[k] = false;
                            all_ok = false;
                        }
                    }
                }
            }
            // ∂N_a/∂x_i back-substitution: unit stride over the strip again.
            for inode in 0..PNODE {
                let d = derivs.d[inode];
                for i in 0..NDIME {
                    let out =
                        &mut row_mut(v.gpcar, (igaus * PNODE + inode) * NDIME + i, vs)[s0..s0 + sl];
                    if all_ok {
                        for (k, o) in out.iter_mut().enumerate() {
                            let mut val = 0.0;
                            for (j, &dj) in d.iter().enumerate() {
                                val += dj * inv[j * NDIME + i][k];
                            }
                            *o = val;
                        }
                    } else {
                        // Singular slots get zeroed derivatives (matching
                        // the accessor path): leaving the previous chunk's
                        // values would make the result schedule-dependent.
                        for (k, o) in out.iter_mut().enumerate() {
                            if ok[k] {
                                let mut val = 0.0;
                                for (j, &dj) in d.iter().enumerate() {
                                    val += dj * inv[j * NDIME + i][k];
                                }
                                *o = val;
                            } else {
                                *o = 0.0;
                            }
                        }
                    }
                }
            }
            s0 += sl;
        }
    }
    singular
}

/// Phase 4, slice path: velocity and velocity gradient at the integration
/// points — pure unit-stride multiply-accumulate rows.
pub fn phase4_gauss_values_slices(shape: &ShapeTable, v: &mut WorkspaceViewsMut) {
    let vs = v.vs;
    for igaus in 0..PGAUS {
        let funcs = shape.functions(igaus);
        for i in 0..NDIME {
            row_mut(v.gpvel, igaus * NDIME + i, vs).fill(0.0);
            for j in 0..NDIME {
                row_mut(v.gpgve, (igaus * NDIME + i) * NDIME + j, vs).fill(0.0);
            }
        }
        for inode in 0..PNODE {
            let n_a = funcs.n[inode];
            for i in 0..NDIME {
                let u = row(v.elvel, inode * NDOFN + i, vs);
                let gv = row_mut(v.gpvel, igaus * NDIME + i, vs);
                for (g, &ua) in gv.iter_mut().zip(u) {
                    *g += n_a * ua;
                }
                for j in 0..NDIME {
                    let car = row(v.gpcar, (igaus * PNODE + inode) * NDIME + j, vs);
                    let gg = row_mut(v.gpgve, (igaus * NDIME + i) * NDIME + j, vs);
                    for ((g, &ca), &ua) in gg.iter_mut().zip(car).zip(u) {
                        *g += ca * ua;
                    }
                }
            }
        }
    }
}

/// Phase 5, slice path: stabilization parameter τ and advection velocity.
pub fn phase5_stabilization_slices(config: &KernelConfig, h_char: f64, v: &mut WorkspaceViewsMut) {
    let vs = v.vs;
    let nu = config.viscosity;
    let rho = config.density;
    let inv_dt = 1.0 / config.dt;
    for igaus in 0..PGAUS {
        {
            let u0 = row(v.gpvel, igaus * NDIME, vs);
            let u1 = row(v.gpvel, igaus * NDIME + 1, vs);
            let u2 = row(v.gpvel, igaus * NDIME + 2, vs);
            let tau = row_mut(v.tau, igaus, vs);
            for (k, t) in tau.iter_mut().enumerate() {
                let unorm = (u0[k] * u0[k] + u1[k] * u1[k] + u2[k] * u2[k]).sqrt();
                // Classic SUPG design: τ = (c1 ν/h² + c2 |u|/h + ρ/Δt)⁻¹.
                *t = 1.0 / (4.0 * nu / (h_char * h_char) + 2.0 * unorm / h_char + rho * inv_dt);
            }
        }
        // The advection velocity is the interpolated velocity itself: a
        // straight row copy.
        for i in 0..NDIME {
            let (src, dst) =
                (row(v.gpvel, igaus * NDIME + i, vs), row_mut(v.gpadv, igaus * NDIME + i, vs));
            dst.copy_from_slice(src);
        }
    }
}

/// Phase 6, slice path: convective term (Galerkin + SUPG) — the
/// FLOP-dominant phase, now with every inner loop a unit-stride slice sweep.
///
/// The SUPG test-function convection `conv_a = (u·∇)N_a` is hoisted into the
/// workspace scratch row once per `(igaus, inode)` and reused by both the
/// RHS and the elemental-matrix accumulation, exactly like the accessor
/// path's per-slot scalar.
pub fn phase6_convective_slices(
    shape: &ShapeTable,
    config: &KernelConfig,
    v: &mut WorkspaceViewsMut,
) {
    let vs = v.vs;
    let rho = config.density;
    for igaus in 0..PGAUS {
        let funcs = shape.functions(igaus);
        for inode in 0..PNODE {
            let n_a = funcs.n[inode];
            let base_a = (igaus * PNODE + inode) * NDIME;
            {
                // conv_a = (u·∇)N_a into the scratch row (accessor
                // accumulation order: 0.0, then the j terms in order).
                let adv0 = row(v.gpadv, igaus * NDIME, vs);
                let adv1 = row(v.gpadv, igaus * NDIME + 1, vs);
                let adv2 = row(v.gpadv, igaus * NDIME + 2, vs);
                let car0 = row(v.gpcar, base_a, vs);
                let car1 = row(v.gpcar, base_a + 1, vs);
                let car2 = row(v.gpcar, base_a + 2, vs);
                for (k, s) in v.scratch.iter_mut().enumerate() {
                    let mut conv_a = 0.0;
                    conv_a += adv0[k] * car0[k];
                    conv_a += adv1[k] * car1[k];
                    conv_a += adv2[k] * car2[k];
                    *s = conv_a;
                }
            }
            for i in 0..NDIME {
                let vol = &row(v.gpvol, igaus, vs)[..vs];
                let tau = &row(v.tau, igaus, vs)[..vs];
                let adv0 = &row(v.gpadv, igaus * NDIME, vs)[..vs];
                let adv1 = &row(v.gpadv, igaus * NDIME + 1, vs)[..vs];
                let adv2 = &row(v.gpadv, igaus * NDIME + 2, vs)[..vs];
                let gve0 = &row(v.gpgve, (igaus * NDIME + i) * NDIME, vs)[..vs];
                let gve1 = &row(v.gpgve, (igaus * NDIME + i) * NDIME + 1, vs)[..vs];
                let gve2 = &row(v.gpgve, (igaus * NDIME + i) * NDIME + 2, vs)[..vs];
                let conv_a = &v.scratch[..vs];
                let rbu = &mut row_mut(v.elrbu, inode * NDIME + i, vs)[..vs];
                for k in 0..vs {
                    let r = &mut rbu[k];
                    // (u·∇)u_i at the integration point.
                    let mut ugradu_i = 0.0;
                    ugradu_i += adv0[k] * gve0[k];
                    ugradu_i += adv1[k] * gve1[k];
                    ugradu_i += adv2[k] * gve2[k];
                    // Galerkin convective residual + SUPG perturbation.
                    let galerkin = rho * n_a * ugradu_i;
                    let supg = rho * tau[k] * conv_a[k] * ugradu_i;
                    *r += -vol[k] * (galerkin + supg);
                }
            }
            if config.semi_implicit {
                for jnode in 0..PNODE {
                    let base_b = (igaus * PNODE + jnode) * NDIME;
                    let vol = &row(v.gpvol, igaus, vs)[..vs];
                    let tau = &row(v.tau, igaus, vs)[..vs];
                    let adv0 = &row(v.gpadv, igaus * NDIME, vs)[..vs];
                    let adv1 = &row(v.gpadv, igaus * NDIME + 1, vs)[..vs];
                    let adv2 = &row(v.gpadv, igaus * NDIME + 2, vs)[..vs];
                    let carb0 = &row(v.gpcar, base_b, vs)[..vs];
                    let carb1 = &row(v.gpcar, base_b + 1, vs)[..vs];
                    let carb2 = &row(v.gpcar, base_b + 2, vs)[..vs];
                    let conv_a = &v.scratch[..vs];
                    let ela = &mut row_mut(v.elauu, inode * PNODE + jnode, vs)[..vs];
                    for k in 0..vs {
                        let mut conv_b = 0.0;
                        conv_b += adv0[k] * carb0[k];
                        conv_b += adv1[k] * carb1[k];
                        conv_b += adv2[k] * carb2[k];
                        let galerkin = n_a * conv_b;
                        let supg = tau[k] * conv_a[k] * conv_b;
                        ela[k] += vol[k] * rho * (galerkin + supg);
                    }
                }
            }
        }
    }
}

/// Phase 7, slice path: viscous term and (semi-implicit) elemental matrix
/// with the lumped mass/Δt diagonal.
pub fn phase7_viscous_slices(shape: &ShapeTable, config: &KernelConfig, v: &mut WorkspaceViewsMut) {
    let vs = v.vs;
    let nu = config.viscosity;
    let rho = config.density;
    let inv_dt = 1.0 / config.dt;
    for igaus in 0..PGAUS {
        let funcs = shape.functions(igaus);
        for inode in 0..PNODE {
            let n_a = funcs.n[inode];
            let base_a = (igaus * PNODE + inode) * NDIME;
            for i in 0..NDIME {
                let vol = &row(v.gpvol, igaus, vs)[..vs];
                let car0 = &row(v.gpcar, base_a, vs)[..vs];
                let car1 = &row(v.gpcar, base_a + 1, vs)[..vs];
                let car2 = &row(v.gpcar, base_a + 2, vs)[..vs];
                let gve0 = &row(v.gpgve, (igaus * NDIME + i) * NDIME, vs)[..vs];
                let gve1 = &row(v.gpgve, (igaus * NDIME + i) * NDIME + 1, vs)[..vs];
                let gve2 = &row(v.gpgve, (igaus * NDIME + i) * NDIME + 2, vs)[..vs];
                let rbu = &mut row_mut(v.elrbu, inode * NDIME + i, vs)[..vs];
                for k in 0..vs {
                    let r = &mut rbu[k];
                    // RHS: -ν ∇N_a : ∇u
                    let mut visc = 0.0;
                    visc += car0[k] * gve0[k];
                    visc += car1[k] * gve1[k];
                    visc += car2[k] * gve2[k];
                    *r += -vol[k] * nu * visc;
                }
            }
            if config.semi_implicit {
                for jnode in 0..PNODE {
                    let base_b = (igaus * PNODE + jnode) * NDIME;
                    let vol = &row(v.gpvol, igaus, vs)[..vs];
                    let car_a0 = &row(v.gpcar, base_a, vs)[..vs];
                    let car_a1 = &row(v.gpcar, base_a + 1, vs)[..vs];
                    let car_a2 = &row(v.gpcar, base_a + 2, vs)[..vs];
                    let car_b0 = &row(v.gpcar, base_b, vs)[..vs];
                    let car_b1 = &row(v.gpcar, base_b + 1, vs)[..vs];
                    let car_b2 = &row(v.gpcar, base_b + 2, vs)[..vs];
                    // Matrix: ν ∇N_a·∇N_b + (ρ/Δt) N_a N_b.
                    let mass = rho * inv_dt * n_a * funcs.n[jnode];
                    let ela = &mut row_mut(v.elauu, inode * PNODE + jnode, vs)[..vs];
                    for k in 0..vs {
                        let mut diff = 0.0;
                        diff += car_a0[k] * car_b0[k];
                        diff += car_a1[k] * car_b1[k];
                        diff += car_a2[k] * car_b2[k];
                        ela[k] += vol[k] * (nu * diff + mass);
                    }
                }
            }
        }
    }
}

/// Phase 8, slice path: validity check and scatter into the global CSR
/// matrix and RHS.  The elemental matrix rows go through
/// [`CsrMatrix::add_row`], which amortizes the row-pointer lookup across the
/// `jnode` batch.
pub fn phase8_scatter_slices(
    mesh: &Mesh,
    config: &KernelConfig,
    v: &WorkspaceViewsMut,
    matrix: &mut CsrMatrix,
    rhs: &mut [f64],
) {
    assert_eq!(rhs.len(), NDIME * mesh.num_nodes());
    let vs = v.vs;
    for iv in 0..vs {
        // The validity check of the paper: padding slots are skipped.
        let Some(elem) = v.element_ids[iv] else { continue };
        let nodes = mesh.element_nodes(elem);
        for (inode, &node_a) in nodes.iter().enumerate() {
            let node_a = node_a as usize;
            for idime in 0..NDIME {
                rhs[NDIME * node_a + idime] += v.elrbu[(inode * NDIME + idime) * vs + iv];
            }
            if config.semi_implicit {
                let mut cols = [0usize; PNODE];
                let mut vals = [0.0f64; PNODE];
                for (jnode, &node_b) in nodes.iter().enumerate() {
                    cols[jnode] = node_b as usize;
                    vals[jnode] = v.elauu[(inode * PNODE + jnode) * vs + iv];
                }
                matrix.add_row(node_a, &cols, &vals);
            }
        }
    }
}

/// Analytic FLOP count of one element's assembly (phases 3–7), used by tests
/// and by the roofline-style reporting in the experiment driver.
pub fn flops_per_element(semi_implicit: bool) -> f64 {
    let p3 = PGAUS as f64
        * (PNODE as f64 * (NDIME * NDIME * 2) as f64   // Jacobian accumulation (FMA)
            + 45.0                                      // det + inverse
            + PNODE as f64 * (NDIME * NDIME * 2) as f64 // gpcar
            + 1.0);
    let p4 = PGAUS as f64 * PNODE as f64 * (NDIME as f64 * 2.0 + (NDIME * NDIME * 2) as f64);
    let p5 = PGAUS as f64 * 16.0;
    let p6_rhs = PGAUS as f64
        * PNODE as f64
        * ((NDIME * 2) as f64 + NDIME as f64 * ((NDIME * 2) as f64 + 7.0));
    let p6_mat = if semi_implicit {
        PGAUS as f64 * PNODE as f64 * PNODE as f64 * ((NDIME * 2) as f64 + 5.0)
    } else {
        0.0
    };
    let p6 = p6_rhs + p6_mat;
    let p7_rhs = PGAUS as f64 * PNODE as f64 * NDIME as f64 * ((NDIME * 2) as f64 + 3.0);
    let p7_mat = if semi_implicit {
        PGAUS as f64 * PNODE as f64 * PNODE as f64 * ((NDIME * 2) as f64 + 6.0)
    } else {
        0.0
    };
    let p8 = PNODE as f64 * NDIME as f64 + if semi_implicit { (PNODE * PNODE) as f64 } else { 0.0 };
    p3 + p4 + p5 + p6 + p7_rhs + p7_mat + p8
}

#[cfg(test)]
mod tests {
    use super::*;
    use lv_mesh::quadrature::GaussRule;
    use lv_mesh::structured::BoxMeshBuilder;
    use lv_mesh::ElementKind;

    fn setup(
        nelem_per_side: usize,
        vs: usize,
    ) -> (Mesh, ShapeTable, ElementChunk, ElementWorkspace) {
        let mesh = BoxMeshBuilder::new(nelem_per_side, nelem_per_side, nelem_per_side)
            .lid_driven_cavity()
            .build();
        let shape = ShapeTable::new(ElementKind::Hex8, &GaussRule::hex_2x2x2());
        let chunk =
            ElementChunk { first_element: 0, len: vs.min(mesh.num_elements()), vector_size: vs };
        let ws = ElementWorkspace::new(vs);
        (mesh, shape, chunk, ws)
    }

    #[test]
    fn phase1_gathers_the_right_coordinates() {
        let (mesh, _, chunk, mut ws) = setup(3, 8);
        phase1_gather_coords(&mesh, &chunk, &mut ws);
        for ivect in 0..chunk.len {
            let elem = chunk.element(ivect).unwrap();
            let nodes = mesh.element_nodes(elem);
            for (inode, &node) in nodes.iter().enumerate() {
                let p = mesh.node_coords(node as usize);
                for d in 0..NDIME {
                    assert_eq!(ws.elcod(inode, d, ivect), p[d]);
                }
            }
        }
    }

    #[test]
    fn phase2_gathers_velocity_and_pressure() {
        let (mesh, _, chunk, mut ws) = setup(3, 8);
        let vel = VectorField::taylor_green(&mesh);
        let pre = Field::from_fn(&mesh, |p| p.x + 2.0 * p.y);
        phase2_gather_unknowns(&mesh, &vel, &pre, &chunk, &mut ws);
        let elem = 3;
        let node = mesh.element_nodes(elem)[5] as usize;
        assert_eq!(ws.elvel(5, 0, 3), vel.get(node).x);
        assert_eq!(ws.elvel(5, 2, 3), vel.get(node).z);
        assert_eq!(ws.elvel(5, NDIME, 3), pre.value(node));
    }

    #[test]
    fn phase3_volume_sums_to_element_volume() {
        let (mesh, shape, chunk, mut ws) = setup(4, 16);
        phase1_gather_coords(&mesh, &chunk, &mut ws);
        let singular = phase3_jacobian(&shape, &chunk, &mut ws);
        assert_eq!(singular, 0);
        for ivect in 0..chunk.len {
            let elem = chunk.element(ivect).unwrap();
            let vol: f64 = (0..PGAUS).map(|g| ws.gpvol(g, ivect)).sum();
            assert!((vol - mesh.element_volume(elem)).abs() < 1e-12);
        }
    }

    #[test]
    fn phase3_cartesian_derivatives_reproduce_linear_gradient() {
        // For the unit-cube structured mesh, a linear field f = 2x - y + 3z
        // must have gradient (2, -1, 3) when differentiated with gpcar.
        let (mesh, shape, chunk, mut ws) = setup(3, 4);
        phase1_gather_coords(&mesh, &chunk, &mut ws);
        phase3_jacobian(&shape, &chunk, &mut ws);
        let ivect = 1;
        let elem = chunk.element(ivect).unwrap();
        let nodes = mesh.element_nodes(elem);
        let nodal: Vec<f64> = nodes
            .iter()
            .map(|&n| {
                let p = mesh.node_coords(n as usize);
                2.0 * p.x - p.y + 3.0 * p.z
            })
            .collect();
        for igaus in 0..PGAUS {
            let expect = [2.0, -1.0, 3.0];
            for (d, &expected) in expect.iter().enumerate() {
                let grad: f64 = (0..PNODE).map(|a| ws.gpcar(igaus, a, d, ivect) * nodal[a]).sum();
                assert!((grad - expected).abs() < 1e-10, "igaus {igaus} dim {d}: {grad}");
            }
        }
    }

    #[test]
    fn phase4_interpolates_constant_velocity_exactly() {
        let (mesh, shape, chunk, mut ws) = setup(3, 4);
        let vel = VectorField::constant(&mesh, lv_mesh::Vec3::new(1.5, -0.5, 2.0));
        let pre = Field::zeros(&mesh);
        phase1_gather_coords(&mesh, &chunk, &mut ws);
        phase2_gather_unknowns(&mesh, &vel, &pre, &chunk, &mut ws);
        phase3_jacobian(&shape, &chunk, &mut ws);
        phase4_gauss_values(&shape, &chunk, &mut ws);
        for igaus in 0..PGAUS {
            assert!((ws.gpvel(igaus, 0, 0) - 1.5).abs() < 1e-12);
            assert!((ws.gpvel(igaus, 1, 0) + 0.5).abs() < 1e-12);
            assert!((ws.gpvel(igaus, 2, 0) - 2.0).abs() < 1e-12);
            // A constant field has zero gradient.
            for i in 0..NDIME {
                for j in 0..NDIME {
                    assert!(ws.gpgve(igaus, i, j, 0).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn phase5_tau_is_positive_and_bounded_by_dt() {
        let (mesh, shape, chunk, mut ws) = setup(3, 4);
        let config = KernelConfig::default();
        let vel = VectorField::taylor_green(&mesh);
        let pre = Field::zeros(&mesh);
        phase1_gather_coords(&mesh, &chunk, &mut ws);
        phase2_gather_unknowns(&mesh, &vel, &pre, &chunk, &mut ws);
        phase3_jacobian(&shape, &chunk, &mut ws);
        phase4_gauss_values(&shape, &chunk, &mut ws);
        phase5_stabilization(&config, mesh.characteristic_length(), &chunk, &mut ws);
        for igaus in 0..PGAUS {
            for ivect in 0..chunk.len {
                let tau = ws.tau(igaus, ivect);
                assert!(tau > 0.0);
                assert!(tau <= config.dt / config.density + 1e-12);
            }
        }
    }

    #[test]
    fn convective_residual_vanishes_for_zero_velocity() {
        let (mesh, shape, chunk, mut ws) = setup(3, 4);
        let config = KernelConfig::default();
        let vel = VectorField::zeros(&mesh);
        let pre = Field::zeros(&mesh);
        phase1_gather_coords(&mesh, &chunk, &mut ws);
        phase2_gather_unknowns(&mesh, &vel, &pre, &chunk, &mut ws);
        phase3_jacobian(&shape, &chunk, &mut ws);
        phase4_gauss_values(&shape, &chunk, &mut ws);
        phase5_stabilization(&config, mesh.characteristic_length(), &chunk, &mut ws);
        phase6_convective(&shape, &config, &chunk, &mut ws);
        for ivect in 0..chunk.len {
            for a in 0..PNODE {
                for d in 0..NDIME {
                    assert_eq!(ws.elrbu(a, d, ivect), 0.0);
                }
            }
        }
    }

    #[test]
    fn viscous_matrix_row_sums_vanish_and_diagonal_is_positive() {
        // ∇N_a·∇N_b row-sums vanish because Σ_b N_b = 1; with the mass term
        // the row sum equals the lumped mass (positive).
        let (mesh, shape, chunk, mut ws) = setup(3, 4);
        let config = KernelConfig::default();
        let vel = VectorField::zeros(&mesh);
        let pre = Field::zeros(&mesh);
        phase1_gather_coords(&mesh, &chunk, &mut ws);
        phase2_gather_unknowns(&mesh, &vel, &pre, &chunk, &mut ws);
        phase3_jacobian(&shape, &chunk, &mut ws);
        phase4_gauss_values(&shape, &chunk, &mut ws);
        phase5_stabilization(&config, mesh.characteristic_length(), &chunk, &mut ws);
        phase7_viscous(&shape, &config, &chunk, &mut ws);
        let elem_vol = mesh.element_volume(0);
        let expected_mass = config.density / config.dt * elem_vol;
        for a in 0..PNODE {
            assert!(ws.elauu(a, a, 0) > 0.0);
        }
        let total: f64 = (0..PNODE)
            .flat_map(|a| (0..PNODE).map(move |b| (a, b)))
            .map(|(a, b)| ws.elauu(a, b, 0))
            .sum();
        // Total of the matrix = ∫ ρ/Δt (Σ_a N_a)(Σ_b N_b) = ρ/Δt · |element|.
        assert!((total - expected_mass).abs() < 1e-9, "total {total} vs {expected_mass}");
    }

    #[test]
    fn phase8_skips_padding_and_conserves_rhs_sum() {
        let (mesh, shape, chunk, mut ws) = setup(3, 32); // 27 elements, 5 padding slots
        let config = KernelConfig::default();
        let vel = VectorField::taylor_green(&mesh);
        let pre = Field::zeros(&mesh);
        phase1_gather_coords(&mesh, &chunk, &mut ws);
        phase2_gather_unknowns(&mesh, &vel, &pre, &chunk, &mut ws);
        phase3_jacobian(&shape, &chunk, &mut ws);
        phase4_gauss_values(&shape, &chunk, &mut ws);
        phase5_stabilization(&config, mesh.characteristic_length(), &chunk, &mut ws);
        phase6_convective(&shape, &config, &chunk, &mut ws);
        phase7_viscous(&shape, &config, &chunk, &mut ws);

        let (row_ptr, col_idx) = mesh.node_graph_csr();
        let mut matrix = CsrMatrix::from_pattern(row_ptr, col_idx);
        let mut rhs = vec![0.0; NDIME * mesh.num_nodes()];
        phase8_scatter(&mesh, &config, &chunk, &ws, &mut matrix, &mut rhs);

        // The global RHS total equals the sum of the valid elemental RHS
        // entries (padding contributes nothing).
        let elemental_total: f64 = (0..chunk.len)
            .flat_map(|iv| (0..PNODE).map(move |a| (iv, a)))
            .flat_map(|(iv, a)| (0..NDIME).map(move |d| (iv, a, d)))
            .map(|(iv, a, d)| ws.elrbu(a, d, iv))
            .sum();
        let global_total: f64 = rhs.iter().sum();
        assert!((elemental_total - global_total).abs() < 1e-9);
        assert!(matrix.frobenius_norm() > 0.0);
    }

    /// Runs phases 1–7 through both paths on the same chunk and compares
    /// every workspace array bit for bit, then phase 8 into separate
    /// systems.
    fn assert_paths_bitwise_identical(nelem_per_side: usize, vs: usize, semi_implicit: bool) {
        let mesh = BoxMeshBuilder::new(nelem_per_side, nelem_per_side, nelem_per_side)
            .lid_driven_cavity()
            .with_jitter(0.13, 5)
            .build();
        let shape = ShapeTable::new(ElementKind::Hex8, &GaussRule::hex_2x2x2());
        let chunk =
            ElementChunk { first_element: 0, len: vs.min(mesh.num_elements()), vector_size: vs };
        let config = KernelConfig { semi_implicit, ..KernelConfig::default() };
        let vel = VectorField::taylor_green(&mesh);
        let pre = Field::from_fn(&mesh, |p| p.x * p.y - 0.5 * p.z);
        let h = mesh.characteristic_length();

        let mut ws_a = ElementWorkspace::new(vs);
        ws_a.reset();
        phase1_gather_coords(&mesh, &chunk, &mut ws_a);
        phase2_gather_unknowns(&mesh, &vel, &pre, &chunk, &mut ws_a);
        let singular_a = phase3_jacobian(&shape, &chunk, &mut ws_a);
        phase4_gauss_values(&shape, &chunk, &mut ws_a);
        phase5_stabilization(&config, h, &chunk, &mut ws_a);
        phase6_convective(&shape, &config, &chunk, &mut ws_a);
        phase7_viscous(&shape, &config, &chunk, &mut ws_a);

        let mut ws_s = ElementWorkspace::new(vs);
        ws_s.poison(-7.25); // prove no stale-data dependence on the way
        ws_s.reset();
        let (row_ptr, col_idx) = mesh.node_graph_csr();
        let mut mat_s = CsrMatrix::from_pattern(row_ptr.clone(), col_idx.clone());
        let mut rhs_s = vec![0.0; NDIME * mesh.num_nodes()];
        {
            let mut v = ws_s.views_mut();
            phase1_gather_coords_slices(&mesh, &chunk, &mut v);
            phase2_gather_unknowns_slices(&mesh, &vel, &pre, &chunk, &mut v);
            let singular_s = phase3_jacobian_slices(&shape, &mut v);
            phase4_gauss_values_slices(&shape, &mut v);
            phase5_stabilization_slices(&config, h, &mut v);
            phase6_convective_slices(&shape, &config, &mut v);
            phase7_viscous_slices(&shape, &config, &mut v);
            assert_eq!(singular_a, singular_s);
            phase8_scatter_slices(&mesh, &config, &v, &mut mat_s, &mut rhs_s);
        }

        let va = ws_a.views();
        let vb = ws_s.views();
        for (name, a, b) in [
            ("elcod", va.elcod, vb.elcod),
            ("elvel", va.elvel, vb.elvel),
            ("gpvol", va.gpvol, vb.gpvol),
            ("gpcar", va.gpcar, vb.gpcar),
            ("gpvel", va.gpvel, vb.gpvel),
            ("gpgve", va.gpgve, vb.gpgve),
            ("gpadv", va.gpadv, vb.gpadv),
            ("tau", va.tau, vb.tau),
            ("elrbu", va.elrbu, vb.elrbu),
            ("elauu", va.elauu, vb.elauu),
        ] {
            for (k, (x, y)) in a.iter().zip(b).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{name}[{k}] differs (vs={vs}, semi={semi_implicit}): {x} vs {y}"
                );
            }
        }
        assert_eq!(va.element_ids, vb.element_ids);

        let mut mat_a = CsrMatrix::from_pattern(row_ptr, col_idx);
        let mut rhs_a = vec![0.0; NDIME * mesh.num_nodes()];
        phase8_scatter(&mesh, &config, &chunk, &ws_a, &mut mat_a, &mut rhs_a);
        for (x, y) in rhs_a.iter().zip(&rhs_s) {
            assert_eq!(x.to_bits(), y.to_bits(), "phase 8 rhs differs");
        }
        for (x, y) in mat_a.values().iter().zip(mat_s.values()) {
            assert_eq!(x.to_bits(), y.to_bits(), "phase 8 matrix differs");
        }
    }

    #[test]
    fn slice_path_is_bitwise_identical_full_chunk() {
        assert_paths_bitwise_identical(3, 27, true);
    }

    #[test]
    fn slice_path_is_bitwise_identical_padded_chunk() {
        // 27 elements in a 32-slot block: 5 padding slots exercised.
        assert_paths_bitwise_identical(3, 32, true);
    }

    #[test]
    fn slice_path_is_bitwise_identical_explicit_scheme() {
        assert_paths_bitwise_identical(3, 8, false);
    }

    #[test]
    fn slice_path_is_bitwise_identical_odd_strip_tail() {
        // vs = 21 exercises a partial strip (21 = 16 + 5) in phase 3.
        assert_paths_bitwise_identical(3, 21, true);
    }

    #[test]
    fn flops_per_element_is_a_few_thousand() {
        let f = flops_per_element(true);
        assert!(f > 3000.0 && f < 30_000.0, "flops/element = {f}");
        assert!(flops_per_element(false) < f);
    }
}
