//! The numeric assembly driver: loops over the `VECTOR_SIZE` blocks of a
//! mesh, runs the eight phases on each block and accumulates the global CSR
//! matrix and RHS.
//!
//! This is the "real" half of the mini-app: it produces numbers the examples
//! and the wall-clock Criterion benches use, and its results are invariant
//! under the code-variant / `VECTOR_SIZE` choices (a property the integration
//! tests check — the paper's refactors must not change the physics).

use crate::config::KernelConfig;
use crate::parallel;
use crate::phases;
use crate::workspace::ElementWorkspace;
use crate::NDIME;
use lv_mesh::chunks::ElementChunks;
use lv_mesh::coloring::{ColoredChunks, ElementColoring};
use lv_mesh::quadrature::GaussRule;
use lv_mesh::{ElementKind, Field, Mesh, ShapeTable, VectorField};
use lv_solver::CsrMatrix;
use serde::{Deserialize, Serialize};

/// Which numeric sweep implementation an assembly call runs.
///
/// All three produce the same physics; they differ in how the inner loops
/// are expressed and scheduled:
///
/// * [`Accessor`](NumericPath::Accessor) — the original per-scalar accessor
///   kernels over mesh-order chunks.  Kept as the readable oracle; the slice
///   path is bitwise identical to it.
/// * [`Slices`](NumericPath::Slices) — the unit-stride slice-view kernels
///   over the same mesh-order chunks.  Bitwise identical to `Accessor`,
///   just faster.
/// * [`Parallel`](NumericPath::Parallel) — the slice-view kernels over the
///   mesh-colored schedule, `threads` workers scattering lock-free.
///   Bitwise reproducible for any thread count; agrees with the serial
///   paths to rounding accuracy (the colored schedule permutes the
///   floating-point summation order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NumericPath {
    /// Per-scalar accessor kernels, serial mesh-order sweep (the oracle).
    Accessor,
    /// Unit-stride slice-view kernels, serial mesh-order sweep.
    Slices,
    /// Slice-view kernels over the colored schedule with this many workers.
    Parallel {
        /// Number of worker threads (each with its own workspace).
        threads: usize,
    },
}

impl NumericPath {
    /// Short name used in benches and reports.
    pub fn name(&self) -> String {
        match self {
            NumericPath::Accessor => "accessor".to_string(),
            NumericPath::Slices => "slices".to_string(),
            NumericPath::Parallel { threads } => format!("parallel-{threads}t"),
        }
    }
}

/// Result of one assembly sweep over the mesh.
#[derive(Debug, Clone)]
pub struct AssemblyOutput {
    /// Global (per-component) system matrix on the node-to-node graph.
    pub matrix: CsrMatrix,
    /// Global RHS, `rhs[NDIME*node + idime]`.
    pub rhs: Vec<f64>,
    /// Assembly statistics.
    pub stats: AssemblyStats,
}

/// Statistics of an assembly sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AssemblyStats {
    /// Number of `VECTOR_SIZE` blocks processed (kernel calls).
    pub chunks: usize,
    /// Number of elements assembled.
    pub elements: usize,
    /// Number of singular Jacobians encountered (0 for valid meshes).
    pub singular_jacobians: usize,
    /// Analytic floating-point operations performed.
    pub flops: f64,
}

/// The Nastin assembly kernel bound to a mesh and a configuration.
#[derive(Debug, Clone)]
pub struct NastinAssembly {
    mesh: Mesh,
    config: KernelConfig,
    shape: ShapeTable,
    chunks: ElementChunks,
    coloring: ElementColoring,
    colored: ColoredChunks,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
}

impl NastinAssembly {
    /// Creates an assembly kernel for `mesh` under `config`.
    ///
    /// # Panics
    /// Panics if the configuration is invalid or the mesh is not hexahedral.
    pub fn new(mesh: Mesh, config: KernelConfig) -> Self {
        let problems = config.validate();
        assert!(problems.is_empty(), "invalid kernel configuration: {problems:?}");
        assert_eq!(
            mesh.kind(),
            ElementKind::Hex8,
            "the Nastin mini-app reproduction operates on hexahedral meshes"
        );
        let shape = ShapeTable::new(ElementKind::Hex8, &GaussRule::hex_2x2x2());
        let chunks = ElementChunks::new(&mesh, config.vector_size);
        // Balanced coloring keeps the per-color chunk counts even, so the
        // parallel sweep's trailing chunks do not idle workers (greedy
        // first-fit stays around as the validity oracle in lv-mesh).
        let coloring = ElementColoring::balanced(&mesh);
        let colored = ColoredChunks::new(&coloring, config.vector_size);
        let (row_ptr, col_idx) = mesh.node_graph_csr();
        NastinAssembly { mesh, config, shape, chunks, coloring, colored, row_ptr, col_idx }
    }

    /// The mesh the kernel operates on.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// The configuration.
    pub fn config(&self) -> &KernelConfig {
        &self.config
    }

    /// Changes the time-step size for subsequent assemblies (the CFL-adaptive
    /// driver shrinks and grows Δt between steps).  Only the phase-5/7
    /// time-integration terms read Δt; the chunking, coloring and sparsity
    /// pattern are untouched, so this is free.
    ///
    /// # Panics
    /// Panics if `dt` is not positive.
    pub fn set_dt(&mut self, dt: f64) {
        assert!(dt > 0.0, "time step must be positive");
        self.config.dt = dt;
    }

    /// The `VECTOR_SIZE` blocking of the mesh.
    pub fn chunks(&self) -> &ElementChunks {
        &self.chunks
    }

    /// Creates a zero matrix with the mesh sparsity pattern (reusable across
    /// time steps).
    pub fn new_matrix(&self) -> CsrMatrix {
        CsrMatrix::from_pattern(self.row_ptr.clone(), self.col_idx.clone())
    }

    /// Runs the full assembly for the given velocity/pressure state,
    /// allocating a fresh matrix and RHS.
    pub fn assemble(&self, velocity: &VectorField, pressure: &Field) -> AssemblyOutput {
        let mut matrix = self.new_matrix();
        let mut rhs = vec![0.0; NDIME * self.mesh.num_nodes()];
        let mut workspace = ElementWorkspace::new(self.config.vector_size);
        let stats = self.assemble_into(velocity, pressure, &mut matrix, &mut rhs, &mut workspace);
        AssemblyOutput { matrix, rhs, stats }
    }

    /// Runs the full assembly into preallocated storage (zeroing it first).
    /// This is the entry point the wall-clock benches call so repeated
    /// iterations do not measure allocation.
    pub fn assemble_into(
        &self,
        velocity: &VectorField,
        pressure: &Field,
        matrix: &mut CsrMatrix,
        rhs: &mut [f64],
        workspace: &mut ElementWorkspace,
    ) -> AssemblyStats {
        assert_eq!(rhs.len(), NDIME * self.mesh.num_nodes());
        assert_eq!(workspace.vector_size(), self.config.vector_size);
        matrix.zero_values();
        rhs.fill(0.0);

        let mut stats = AssemblyStats::default();
        for chunk in &self.chunks {
            workspace.reset();
            phases::phase1_gather_coords(&self.mesh, chunk, workspace);
            phases::phase2_gather_unknowns(&self.mesh, velocity, pressure, chunk, workspace);
            stats.singular_jacobians += phases::phase3_jacobian(&self.shape, chunk, workspace);
            phases::phase4_gauss_values(&self.shape, chunk, workspace);
            phases::phase5_stabilization(
                &self.config,
                self.mesh.characteristic_length(),
                chunk,
                workspace,
            );
            phases::phase6_convective(&self.shape, &self.config, chunk, workspace);
            phases::phase7_viscous(&self.shape, &self.config, chunk, workspace);
            phases::phase8_scatter(&self.mesh, &self.config, chunk, workspace, matrix, rhs);
            stats.chunks += 1;
            stats.elements += chunk.len;
        }
        stats.flops = stats.elements as f64 * phases::flops_per_element(self.config.semi_implicit);
        stats
    }

    /// Runs the full assembly through the **slice path**: the unit-stride
    /// slice-view kernels over the same mesh-order chunks as
    /// [`assemble_into`](Self::assemble_into).  Bitwise identical output,
    /// measurably faster (no per-scalar index math or bounds checks in the
    /// inner loops).
    pub fn assemble_into_slices(
        &self,
        velocity: &VectorField,
        pressure: &Field,
        matrix: &mut CsrMatrix,
        rhs: &mut [f64],
        workspace: &mut ElementWorkspace,
    ) -> AssemblyStats {
        assert_eq!(rhs.len(), NDIME * self.mesh.num_nodes());
        assert_eq!(workspace.vector_size(), self.config.vector_size);
        matrix.zero_values();
        rhs.fill(0.0);

        let h_char = self.mesh.characteristic_length();
        let mut stats = AssemblyStats::default();
        for chunk in &self.chunks {
            workspace.reset();
            let mut v = workspace.views_mut();
            phases::phase1_gather_coords_slices(&self.mesh, chunk, &mut v);
            phases::phase2_gather_unknowns_slices(&self.mesh, velocity, pressure, chunk, &mut v);
            stats.singular_jacobians += phases::phase3_jacobian_slices(&self.shape, &mut v);
            phases::phase4_gauss_values_slices(&self.shape, &mut v);
            phases::phase5_stabilization_slices(&self.config, h_char, &mut v);
            phases::phase6_convective_slices(&self.shape, &self.config, &mut v);
            phases::phase7_viscous_slices(&self.shape, &self.config, &mut v);
            phases::phase8_scatter_slices(&self.mesh, &self.config, &v, matrix, rhs);
            stats.chunks += 1;
            stats.elements += chunk.len;
        }
        stats.flops = stats.elements as f64 * phases::flops_per_element(self.config.semi_implicit);
        stats
    }

    /// Runs the full assembly through the **mesh-colored parallel path**:
    /// slice-view kernels over the colored schedule, one worker per
    /// workspace in `workspaces`, scattering into the shared system without
    /// atomics (see [`lv_mesh::coloring`]).  Spawns a transient
    /// [`lv_runtime::Team`] sized to `workspaces`; a time-step loop that
    /// also solves should use
    /// [`assemble_parallel_into_on`](Self::assemble_parallel_into_on) with
    /// its own persistent team instead.
    ///
    /// The result is bitwise identical for every worker count and agrees
    /// with the serial paths to rounding accuracy (the colored schedule
    /// permutes the summation order).
    pub fn assemble_parallel_into(
        &self,
        velocity: &VectorField,
        pressure: &Field,
        matrix: &mut CsrMatrix,
        rhs: &mut [f64],
        workspaces: &mut [ElementWorkspace],
    ) -> AssemblyStats {
        let team = lv_runtime::Team::new(workspaces.len());
        self.assemble_parallel_into_on(&team, velocity, pressure, matrix, rhs, workspaces)
    }

    /// [`assemble_parallel_into`](Self::assemble_parallel_into) on a
    /// caller-provided worker team — the shared-pool path: the same team
    /// runs the colored assembly sweep *and* the Krylov solves of a time
    /// step, so workers are spawned once per run instead of once per sweep.
    ///
    /// `min(team.num_threads(), workspaces.len())` ranks assemble; the
    /// result is bitwise identical for every worker count.
    pub fn assemble_parallel_into_on(
        &self,
        team: &lv_runtime::Team,
        velocity: &VectorField,
        pressure: &Field,
        matrix: &mut CsrMatrix,
        rhs: &mut [f64],
        workspaces: &mut [ElementWorkspace],
    ) -> AssemblyStats {
        matrix.zero_values();
        rhs.fill(0.0);
        let partial = parallel::colored_sweep(
            team,
            &self.mesh,
            &self.shape,
            &self.config,
            velocity,
            pressure,
            &self.colored,
            workspaces,
            matrix,
            rhs,
        );
        AssemblyStats {
            chunks: partial.chunks,
            elements: partial.elements,
            singular_jacobians: partial.singular_jacobians,
            flops: partial.elements as f64 * phases::flops_per_element(self.config.semi_implicit),
        }
    }

    /// Convenience wrapper around
    /// [`assemble_parallel_into`](Self::assemble_parallel_into): allocates
    /// the matrix, RHS and one workspace per thread.
    pub fn assemble_parallel(
        &self,
        velocity: &VectorField,
        pressure: &Field,
        threads: usize,
    ) -> AssemblyOutput {
        let threads = threads.max(1);
        let mut matrix = self.new_matrix();
        let mut rhs = vec![0.0; NDIME * self.mesh.num_nodes()];
        let mut workspaces: Vec<ElementWorkspace> =
            (0..threads).map(|_| ElementWorkspace::new(self.config.vector_size)).collect();
        let stats =
            self.assemble_parallel_into(velocity, pressure, &mut matrix, &mut rhs, &mut workspaces);
        AssemblyOutput { matrix, rhs, stats }
    }

    /// Runs the assembly through the given [`NumericPath`] into
    /// preallocated storage (allocating only the parallel path's worker
    /// workspaces when `path` is [`NumericPath::Parallel`] and `workspace`
    /// alone is not enough).
    pub fn assemble_into_with(
        &self,
        path: NumericPath,
        velocity: &VectorField,
        pressure: &Field,
        matrix: &mut CsrMatrix,
        rhs: &mut [f64],
        workspaces: &mut [ElementWorkspace],
    ) -> AssemblyStats {
        match path {
            NumericPath::Accessor => {
                self.assemble_into(velocity, pressure, matrix, rhs, &mut workspaces[0])
            }
            NumericPath::Slices => {
                self.assemble_into_slices(velocity, pressure, matrix, rhs, &mut workspaces[0])
            }
            NumericPath::Parallel { threads } => {
                let threads = threads.max(1).min(workspaces.len());
                self.assemble_parallel_into(
                    velocity,
                    pressure,
                    matrix,
                    rhs,
                    &mut workspaces[..threads],
                )
            }
        }
    }

    /// The element coloring of the mesh (computed at construction).
    pub fn element_coloring(&self) -> &ElementColoring {
        &self.coloring
    }

    /// The colored chunk schedule of the parallel path.
    pub fn colored_chunks(&self) -> &ColoredChunks {
        &self.colored
    }

    /// Applies Dirichlet boundary conditions to an assembled system: wall,
    /// lid and inflow rows become identity rows with zero RHS increment (the
    /// velocity increment at prescribed nodes is zero).
    pub fn apply_dirichlet(&self, matrix: &mut CsrMatrix, rhs: &mut [f64]) {
        use lv_mesh::BoundaryTag;
        for node in 0..self.mesh.num_nodes() {
            match self.mesh.boundary_tag(node) {
                BoundaryTag::Wall | BoundaryTag::Lid | BoundaryTag::Inflow => {
                    // The matrix is shared by the NDIME components; zero the
                    // corresponding RHS entries and make the row an identity
                    // row once.
                    matrix.dirichlet_row(node);
                    for d in 0..NDIME {
                        rhs[NDIME * node + d] = 0.0;
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptLevel;
    use lv_mesh::structured::BoxMeshBuilder;
    use lv_mesh::Vec3;

    fn cavity(n: usize) -> Mesh {
        BoxMeshBuilder::new(n, n, n).lid_driven_cavity().with_jitter(0.1, 11).build()
    }

    fn state(mesh: &Mesh) -> (VectorField, Field) {
        let mut v = VectorField::taylor_green(mesh);
        v.apply_boundary_conditions(mesh, Vec3::new(1.0, 0.0, 0.0), Vec3::ZERO);
        (v, Field::from_fn(mesh, |p| p.x * p.y))
    }

    #[test]
    fn assembly_produces_finite_output() {
        let mesh = cavity(4);
        let (v, p) = state(&mesh);
        let asm = NastinAssembly::new(mesh, KernelConfig::new(16, OptLevel::Original));
        let out = asm.assemble(&v, &p);
        assert_eq!(out.stats.elements, 64);
        assert_eq!(out.stats.singular_jacobians, 0);
        assert!(out.rhs.iter().all(|x| x.is_finite()));
        assert!(out.matrix.values().iter().all(|x| x.is_finite()));
        assert!(out.stats.flops > 0.0);
    }

    #[test]
    fn result_is_independent_of_vector_size() {
        // The VECTOR_SIZE blocking is purely an implementation parameter: the
        // assembled system must be identical (up to floating-point roundoff
        // from summation order, which is also identical here because the
        // element order within the accumulation is unchanged).
        let mesh = cavity(4);
        let (v, p) = state(&mesh);
        let reference =
            NastinAssembly::new(mesh.clone(), KernelConfig::new(16, OptLevel::Original))
                .assemble(&v, &p);
        for vs in [64, 240, 512] {
            let out = NastinAssembly::new(mesh.clone(), KernelConfig::new(vs, OptLevel::Vec1))
                .assemble(&v, &p);
            for (a, b) in reference.rhs.iter().zip(&out.rhs) {
                assert!((a - b).abs() < 1e-11, "rhs mismatch for VECTOR_SIZE={vs}");
            }
            for (a, b) in reference.matrix.values().iter().zip(out.matrix.values()) {
                assert!((a - b).abs() < 1e-11, "matrix mismatch for VECTOR_SIZE={vs}");
            }
        }
    }

    #[test]
    fn explicit_scheme_assembles_no_matrix() {
        let mesh = cavity(3);
        let (v, p) = state(&mesh);
        let config = KernelConfig::new(32, OptLevel::Original).explicit_scheme();
        let out = NastinAssembly::new(mesh, config).assemble(&v, &p);
        assert_eq!(out.matrix.frobenius_norm(), 0.0);
        assert!(out.rhs.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn semi_implicit_matrix_is_solvable() {
        let mesh = cavity(3);
        let (v, p) = state(&mesh);
        let asm = NastinAssembly::new(mesh, KernelConfig::new(64, OptLevel::Vec1));
        let mut out = asm.assemble(&v, &p);
        asm.apply_dirichlet(&mut out.matrix, &mut out.rhs);
        // Solve one component system with BiCGSTAB.
        let n = asm.mesh().num_nodes();
        let b: Vec<f64> = (0..n).map(|i| out.rhs[NDIME * i]).collect();
        let solution =
            lv_solver::bicgstab(&out.matrix, &b, &lv_solver::SolveOptions::default()).unwrap();
        assert!(solution.final_residual() < 1e-8);
    }

    #[test]
    fn assemble_into_reuses_storage_and_matches_assemble() {
        let mesh = cavity(3);
        let (v, p) = state(&mesh);
        let asm = NastinAssembly::new(mesh, KernelConfig::new(16, OptLevel::IVec2));
        let fresh = asm.assemble(&v, &p);
        let mut matrix = asm.new_matrix();
        let mut rhs = vec![0.0; NDIME * asm.mesh().num_nodes()];
        let mut ws = ElementWorkspace::new(16);
        // Run twice to make sure zeroing works.
        asm.assemble_into(&v, &p, &mut matrix, &mut rhs, &mut ws);
        let stats = asm.assemble_into(&v, &p, &mut matrix, &mut rhs, &mut ws);
        assert_eq!(stats.elements, 27);
        for (a, b) in fresh.rhs.iter().zip(&rhs) {
            assert!((a - b).abs() < 1e-12);
        }
        for (a, b) in fresh.matrix.values().iter().zip(matrix.values()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn chunk_count_matches_mesh_and_vector_size() {
        let mesh = cavity(4); // 64 elements
        let asm = NastinAssembly::new(mesh, KernelConfig::new(24, OptLevel::Original));
        assert_eq!(asm.chunks().num_chunks(), 3);
        let (v, p) = state(asm.mesh());
        let out = asm.assemble(&v, &p);
        assert_eq!(out.stats.chunks, 3);
    }

    #[test]
    fn slice_driver_is_bitwise_identical_to_accessor_driver() {
        let mesh = cavity(4);
        let (v, p) = state(&mesh);
        let asm = NastinAssembly::new(mesh, KernelConfig::new(24, OptLevel::Vec1)); // padded last chunk
        let mut matrix_a = asm.new_matrix();
        let mut matrix_s = asm.new_matrix();
        let mut rhs_a = vec![0.0; NDIME * asm.mesh().num_nodes()];
        let mut rhs_s = vec![0.0; NDIME * asm.mesh().num_nodes()];
        let mut ws = ElementWorkspace::new(24);
        let stats_a = asm.assemble_into(&v, &p, &mut matrix_a, &mut rhs_a, &mut ws);
        let stats_s = asm.assemble_into_slices(&v, &p, &mut matrix_s, &mut rhs_s, &mut ws);
        assert_eq!(stats_a, stats_s);
        for (a, b) in rhs_a.iter().zip(&rhs_s) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in matrix_a.values().iter().zip(matrix_s.values()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn parallel_driver_is_bitwise_reproducible_across_thread_counts() {
        let mesh = cavity(4);
        let (v, p) = state(&mesh);
        let asm = NastinAssembly::new(mesh, KernelConfig::new(16, OptLevel::Vec1));
        let reference = asm.assemble_parallel(&v, &p, 1);
        for threads in [2usize, 4] {
            let out = asm.assemble_parallel(&v, &p, threads);
            assert_eq!(out.stats.elements, reference.stats.elements);
            for (a, b) in reference.rhs.iter().zip(&out.rhs) {
                assert_eq!(a.to_bits(), b.to_bits(), "rhs differs at {threads} threads");
            }
            for (a, b) in reference.matrix.values().iter().zip(out.matrix.values()) {
                assert_eq!(a.to_bits(), b.to_bits(), "matrix differs at {threads} threads");
            }
        }
    }

    #[test]
    fn parallel_driver_matches_serial_to_rounding_accuracy() {
        let mesh = cavity(4);
        let (v, p) = state(&mesh);
        let asm = NastinAssembly::new(mesh, KernelConfig::new(32, OptLevel::Vec1));
        let serial = asm.assemble(&v, &p);
        let parallel = asm.assemble_parallel(&v, &p, 3);
        assert_eq!(parallel.stats.elements, serial.stats.elements);
        assert_eq!(parallel.stats.singular_jacobians, 0);
        // The colored schedule permutes the summation order: equal to
        // rounding accuracy, not bitwise.
        for (a, b) in serial.rhs.iter().zip(&parallel.rhs) {
            assert!((a - b).abs() < 1e-11, "rhs {a} vs {b}");
        }
        for (a, b) in serial.matrix.values().iter().zip(parallel.matrix.values()) {
            assert!((a - b).abs() < 1e-11, "matrix {a} vs {b}");
        }
    }

    #[test]
    fn assemble_into_with_dispatches_every_path() {
        let mesh = cavity(3);
        let (v, p) = state(&mesh);
        let asm = NastinAssembly::new(mesh, KernelConfig::new(16, OptLevel::Vec1));
        let mut matrix = asm.new_matrix();
        let mut rhs = vec![0.0; NDIME * asm.mesh().num_nodes()];
        let mut workspaces: Vec<ElementWorkspace> =
            (0..2).map(|_| ElementWorkspace::new(16)).collect();
        let oracle = asm.assemble(&v, &p);
        for path in
            [NumericPath::Accessor, NumericPath::Slices, NumericPath::Parallel { threads: 2 }]
        {
            let stats =
                asm.assemble_into_with(path, &v, &p, &mut matrix, &mut rhs, &mut workspaces);
            assert_eq!(stats.elements, 27, "{}", path.name());
            for (a, b) in oracle.rhs.iter().zip(&rhs) {
                assert!((a - b).abs() < 1e-11, "{} rhs mismatch", path.name());
            }
        }
        assert_eq!(NumericPath::Parallel { threads: 4 }.name(), "parallel-4t");
    }

    #[test]
    fn shared_team_sweep_matches_transient_team_sweep_bitwise() {
        let mesh = cavity(4);
        let (v, p) = state(&mesh);
        let asm = NastinAssembly::new(mesh, KernelConfig::new(16, OptLevel::Vec1));
        let transient = asm.assemble_parallel(&v, &p, 3);
        let team = lv_runtime::Team::new(3);
        let mut matrix = asm.new_matrix();
        let mut rhs = vec![0.0; NDIME * asm.mesh().num_nodes()];
        let mut workspaces: Vec<ElementWorkspace> =
            (0..3).map(|_| ElementWorkspace::new(16)).collect();
        // Two sweeps on the same pool: reuse must not change anything.
        for _ in 0..2 {
            let stats = asm.assemble_parallel_into_on(
                &team,
                &v,
                &p,
                &mut matrix,
                &mut rhs,
                &mut workspaces,
            );
            assert_eq!(stats.elements, transient.stats.elements);
            for (a, b) in transient.rhs.iter().zip(&rhs) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in transient.matrix.values().iter().zip(matrix.values()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn team_larger_than_workspace_set_is_tolerated() {
        // Surplus ranks only keep the color barriers balanced; the schedule
        // is still the 2-workspace one, so the result matches it bitwise.
        let mesh = cavity(3);
        let (v, p) = state(&mesh);
        let asm = NastinAssembly::new(mesh, KernelConfig::new(8, OptLevel::Vec1));
        let reference = asm.assemble_parallel(&v, &p, 2);
        let team = lv_runtime::Team::new(5);
        let mut matrix = asm.new_matrix();
        let mut rhs = vec![0.0; NDIME * asm.mesh().num_nodes()];
        let mut workspaces: Vec<ElementWorkspace> =
            (0..2).map(|_| ElementWorkspace::new(8)).collect();
        let stats =
            asm.assemble_parallel_into_on(&team, &v, &p, &mut matrix, &mut rhs, &mut workspaces);
        assert_eq!(stats.elements, 27);
        for (a, b) in reference.rhs.iter().zip(&rhs) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn coloring_accessors_expose_a_valid_schedule() {
        let mesh = cavity(4);
        let asm = NastinAssembly::new(mesh.clone(), KernelConfig::new(16, OptLevel::Vec1));
        assert!(asm.element_coloring().validate(&mesh).is_empty());
        assert!(asm.colored_chunks().validate(&mesh).is_empty());
        assert_eq!(asm.colored_chunks().num_elements(), 64);
    }

    #[test]
    #[should_panic]
    fn tet_mesh_is_rejected() {
        // Build a fake tet mesh through from_raw and make sure the assembly
        // constructor refuses it.
        let mesh = lv_mesh::Mesh::from_raw(
            lv_mesh::ElementKind::Tet4,
            vec![0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0],
            vec![0, 1, 2, 3],
            vec![lv_mesh::BoundaryTag::Interior; 4],
            1.0,
        );
        let _ = NastinAssembly::new(mesh, KernelConfig::default());
    }
}
