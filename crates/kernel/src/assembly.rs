//! The numeric assembly driver: loops over the `VECTOR_SIZE` blocks of a
//! mesh, runs the eight phases on each block and accumulates the global CSR
//! matrix and RHS.
//!
//! This is the "real" half of the mini-app: it produces numbers the examples
//! and the wall-clock Criterion benches use, and its results are invariant
//! under the code-variant / `VECTOR_SIZE` choices (a property the integration
//! tests check — the paper's refactors must not change the physics).

use crate::config::KernelConfig;
use crate::phases;
use crate::workspace::ElementWorkspace;
use crate::NDIME;
use lv_mesh::chunks::ElementChunks;
use lv_mesh::quadrature::GaussRule;
use lv_mesh::{ElementKind, Field, Mesh, ShapeTable, VectorField};
use lv_solver::CsrMatrix;
use serde::{Deserialize, Serialize};

/// Result of one assembly sweep over the mesh.
#[derive(Debug, Clone)]
pub struct AssemblyOutput {
    /// Global (per-component) system matrix on the node-to-node graph.
    pub matrix: CsrMatrix,
    /// Global RHS, `rhs[NDIME*node + idime]`.
    pub rhs: Vec<f64>,
    /// Assembly statistics.
    pub stats: AssemblyStats,
}

/// Statistics of an assembly sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AssemblyStats {
    /// Number of `VECTOR_SIZE` blocks processed (kernel calls).
    pub chunks: usize,
    /// Number of elements assembled.
    pub elements: usize,
    /// Number of singular Jacobians encountered (0 for valid meshes).
    pub singular_jacobians: usize,
    /// Analytic floating-point operations performed.
    pub flops: f64,
}

/// The Nastin assembly kernel bound to a mesh and a configuration.
#[derive(Debug, Clone)]
pub struct NastinAssembly {
    mesh: Mesh,
    config: KernelConfig,
    shape: ShapeTable,
    chunks: ElementChunks,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
}

impl NastinAssembly {
    /// Creates an assembly kernel for `mesh` under `config`.
    ///
    /// # Panics
    /// Panics if the configuration is invalid or the mesh is not hexahedral.
    pub fn new(mesh: Mesh, config: KernelConfig) -> Self {
        let problems = config.validate();
        assert!(problems.is_empty(), "invalid kernel configuration: {problems:?}");
        assert_eq!(
            mesh.kind(),
            ElementKind::Hex8,
            "the Nastin mini-app reproduction operates on hexahedral meshes"
        );
        let shape = ShapeTable::new(ElementKind::Hex8, &GaussRule::hex_2x2x2());
        let chunks = ElementChunks::new(&mesh, config.vector_size);
        let (row_ptr, col_idx) = mesh.node_graph_csr();
        NastinAssembly { mesh, config, shape, chunks, row_ptr, col_idx }
    }

    /// The mesh the kernel operates on.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// The configuration.
    pub fn config(&self) -> &KernelConfig {
        &self.config
    }

    /// The `VECTOR_SIZE` blocking of the mesh.
    pub fn chunks(&self) -> &ElementChunks {
        &self.chunks
    }

    /// Creates a zero matrix with the mesh sparsity pattern (reusable across
    /// time steps).
    pub fn new_matrix(&self) -> CsrMatrix {
        CsrMatrix::from_pattern(self.row_ptr.clone(), self.col_idx.clone())
    }

    /// Runs the full assembly for the given velocity/pressure state,
    /// allocating a fresh matrix and RHS.
    pub fn assemble(&self, velocity: &VectorField, pressure: &Field) -> AssemblyOutput {
        let mut matrix = self.new_matrix();
        let mut rhs = vec![0.0; NDIME * self.mesh.num_nodes()];
        let mut workspace = ElementWorkspace::new(self.config.vector_size);
        let stats = self.assemble_into(velocity, pressure, &mut matrix, &mut rhs, &mut workspace);
        AssemblyOutput { matrix, rhs, stats }
    }

    /// Runs the full assembly into preallocated storage (zeroing it first).
    /// This is the entry point the wall-clock benches call so repeated
    /// iterations do not measure allocation.
    pub fn assemble_into(
        &self,
        velocity: &VectorField,
        pressure: &Field,
        matrix: &mut CsrMatrix,
        rhs: &mut [f64],
        workspace: &mut ElementWorkspace,
    ) -> AssemblyStats {
        assert_eq!(rhs.len(), NDIME * self.mesh.num_nodes());
        assert_eq!(workspace.vector_size(), self.config.vector_size);
        matrix.zero_values();
        rhs.fill(0.0);

        let mut stats = AssemblyStats::default();
        for chunk in &self.chunks {
            workspace.reset();
            phases::phase1_gather_coords(&self.mesh, chunk, workspace);
            phases::phase2_gather_unknowns(&self.mesh, velocity, pressure, chunk, workspace);
            stats.singular_jacobians += phases::phase3_jacobian(&self.shape, chunk, workspace);
            phases::phase4_gauss_values(&self.shape, chunk, workspace);
            phases::phase5_stabilization(
                &self.config,
                self.mesh.characteristic_length(),
                chunk,
                workspace,
            );
            phases::phase6_convective(&self.shape, &self.config, chunk, workspace);
            phases::phase7_viscous(&self.shape, &self.config, chunk, workspace);
            phases::phase8_scatter(&self.mesh, &self.config, chunk, workspace, matrix, rhs);
            stats.chunks += 1;
            stats.elements += chunk.len;
        }
        stats.flops = stats.elements as f64 * phases::flops_per_element(self.config.semi_implicit);
        stats
    }

    /// Applies Dirichlet boundary conditions to an assembled system: wall,
    /// lid and inflow rows become identity rows with zero RHS increment (the
    /// velocity increment at prescribed nodes is zero).
    pub fn apply_dirichlet(&self, matrix: &mut CsrMatrix, rhs: &mut [f64]) {
        use lv_mesh::BoundaryTag;
        for node in 0..self.mesh.num_nodes() {
            match self.mesh.boundary_tag(node) {
                BoundaryTag::Wall | BoundaryTag::Lid | BoundaryTag::Inflow => {
                    // The matrix is shared by the NDIME components; zero the
                    // corresponding RHS entries and make the row an identity
                    // row once.
                    matrix.dirichlet_row(node);
                    for d in 0..NDIME {
                        rhs[NDIME * node + d] = 0.0;
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptLevel;
    use lv_mesh::structured::BoxMeshBuilder;
    use lv_mesh::Vec3;

    fn cavity(n: usize) -> Mesh {
        BoxMeshBuilder::new(n, n, n).lid_driven_cavity().with_jitter(0.1, 11).build()
    }

    fn state(mesh: &Mesh) -> (VectorField, Field) {
        let mut v = VectorField::taylor_green(mesh);
        v.apply_boundary_conditions(mesh, Vec3::new(1.0, 0.0, 0.0), Vec3::ZERO);
        (v, Field::from_fn(mesh, |p| p.x * p.y))
    }

    #[test]
    fn assembly_produces_finite_output() {
        let mesh = cavity(4);
        let (v, p) = state(&mesh);
        let asm = NastinAssembly::new(mesh, KernelConfig::new(16, OptLevel::Original));
        let out = asm.assemble(&v, &p);
        assert_eq!(out.stats.elements, 64);
        assert_eq!(out.stats.singular_jacobians, 0);
        assert!(out.rhs.iter().all(|x| x.is_finite()));
        assert!(out.matrix.values().iter().all(|x| x.is_finite()));
        assert!(out.stats.flops > 0.0);
    }

    #[test]
    fn result_is_independent_of_vector_size() {
        // The VECTOR_SIZE blocking is purely an implementation parameter: the
        // assembled system must be identical (up to floating-point roundoff
        // from summation order, which is also identical here because the
        // element order within the accumulation is unchanged).
        let mesh = cavity(4);
        let (v, p) = state(&mesh);
        let reference =
            NastinAssembly::new(mesh.clone(), KernelConfig::new(16, OptLevel::Original))
                .assemble(&v, &p);
        for vs in [64, 240, 512] {
            let out = NastinAssembly::new(mesh.clone(), KernelConfig::new(vs, OptLevel::Vec1))
                .assemble(&v, &p);
            for (a, b) in reference.rhs.iter().zip(&out.rhs) {
                assert!((a - b).abs() < 1e-11, "rhs mismatch for VECTOR_SIZE={vs}");
            }
            for (a, b) in reference.matrix.values().iter().zip(out.matrix.values()) {
                assert!((a - b).abs() < 1e-11, "matrix mismatch for VECTOR_SIZE={vs}");
            }
        }
    }

    #[test]
    fn explicit_scheme_assembles_no_matrix() {
        let mesh = cavity(3);
        let (v, p) = state(&mesh);
        let config = KernelConfig::new(32, OptLevel::Original).explicit_scheme();
        let out = NastinAssembly::new(mesh, config).assemble(&v, &p);
        assert_eq!(out.matrix.frobenius_norm(), 0.0);
        assert!(out.rhs.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn semi_implicit_matrix_is_solvable() {
        let mesh = cavity(3);
        let (v, p) = state(&mesh);
        let asm = NastinAssembly::new(mesh, KernelConfig::new(64, OptLevel::Vec1));
        let mut out = asm.assemble(&v, &p);
        asm.apply_dirichlet(&mut out.matrix, &mut out.rhs);
        // Solve one component system with BiCGSTAB.
        let n = asm.mesh().num_nodes();
        let b: Vec<f64> = (0..n).map(|i| out.rhs[NDIME * i]).collect();
        let solution =
            lv_solver::bicgstab(&out.matrix, &b, &lv_solver::SolveOptions::default()).unwrap();
        assert!(solution.final_residual() < 1e-8);
    }

    #[test]
    fn assemble_into_reuses_storage_and_matches_assemble() {
        let mesh = cavity(3);
        let (v, p) = state(&mesh);
        let asm = NastinAssembly::new(mesh, KernelConfig::new(16, OptLevel::IVec2));
        let fresh = asm.assemble(&v, &p);
        let mut matrix = asm.new_matrix();
        let mut rhs = vec![0.0; NDIME * asm.mesh().num_nodes()];
        let mut ws = ElementWorkspace::new(16);
        // Run twice to make sure zeroing works.
        asm.assemble_into(&v, &p, &mut matrix, &mut rhs, &mut ws);
        let stats = asm.assemble_into(&v, &p, &mut matrix, &mut rhs, &mut ws);
        assert_eq!(stats.elements, 27);
        for (a, b) in fresh.rhs.iter().zip(&rhs) {
            assert!((a - b).abs() < 1e-12);
        }
        for (a, b) in fresh.matrix.values().iter().zip(matrix.values()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn chunk_count_matches_mesh_and_vector_size() {
        let mesh = cavity(4); // 64 elements
        let asm = NastinAssembly::new(mesh, KernelConfig::new(24, OptLevel::Original));
        assert_eq!(asm.chunks().num_chunks(), 3);
        let (v, p) = state(asm.mesh());
        let out = asm.assemble(&v, &p);
        assert_eq!(out.stats.chunks, 3);
    }

    #[test]
    #[should_panic]
    fn tet_mesh_is_rejected() {
        // Build a fake tet mesh through from_raw and make sure the assembly
        // constructor refuses it.
        let mesh = lv_mesh::Mesh::from_raw(
            lv_mesh::ElementKind::Tet4,
            vec![0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0],
            vec![0, 1, 2, 3],
            vec![lv_mesh::BoundaryTag::Interior; 4],
            1.0,
        );
        let _ = NastinAssembly::new(mesh, KernelConfig::default());
    }
}
