//! # lv-mesh
//!
//! Mesh, quadrature and shape-function substrate for the Alya long-vector
//! reproduction.
//!
//! The paper's mini-app operates on an unstructured finite-element mesh: the
//! Nastin (Navier–Stokes) assembly gathers nodal data element by element,
//! integrates with Gauss quadrature, and scatters elemental contributions back
//! into global vectors and matrices.  This crate provides everything the
//! kernel crate needs to do that with real numbers:
//!
//! * [`geometry`] — small fixed-size vector/matrix math (3D points, 3×3
//!   Jacobians) used throughout the element routines.
//! * [`mesh`] — the [`Mesh`](mesh::Mesh) container: node coordinates, element
//!   connectivity, element types and boundary tags.
//! * [`structured`] — generators for structured hexahedral and tetrahedral
//!   meshes of boxes and channels (the workloads used by the examples and
//!   benches).
//! * [`quadrature`] — Gauss–Legendre quadrature rules for hexahedra and
//!   tetrahedra.
//! * [`shape`] — Q1/P1 shape functions and their reference-space derivatives
//!   evaluated at the quadrature points.
//! * [`field`] — nodal fields (velocity, pressure, scalar) with analytic
//!   initializers used by the examples.
//! * [`chunks`] — packing of elements into `VECTOR_SIZE` blocks, exactly the
//!   application-level parameter the paper sweeps (16 … 512).
//! * [`coloring`] — node-disjoint coloring of those blocks, the scheduling
//!   substrate of the multi-threaded assembly sweep.
//! * [`renumber`] — reverse Cuthill–McKee node renumbering and the
//!   gather-locality / bandwidth metrics it improves.
//!
//! The crate is intentionally free of any simulator or compiler-model
//! concerns: it only describes the discrete problem.

#![warn(missing_docs)]

pub mod chunks;
pub mod coloring;
pub mod field;
pub mod geometry;
pub mod hierarchy;
pub mod mesh;
pub mod quadrature;
pub mod renumber;
pub mod shape;
pub mod structured;

pub use chunks::{ChunkSlots, ElementChunk, ElementChunks};
pub use coloring::{ColoredChunks, ElementColoring};
pub use field::{Field, VectorField};
pub use geometry::{Mat3, Point3, Vec3};
pub use hierarchy::{trilinear_stencil, BoxLattice, TrilinearStencil};
pub use mesh::{BoundaryTag, ElementKind, Mesh};
pub use quadrature::{GaussRule, QuadraturePoint};
pub use renumber::{node_bandwidth, reverse_cuthill_mckee, LocalityReport, NodePermutation};
pub use shape::{ShapeDerivatives, ShapeFunctions, ShapeTable};
pub use structured::{BoxMeshBuilder, ChannelMeshBuilder};

/// Number of spatial dimensions used throughout the reproduction.
///
/// Alya's Nastin kernel in the paper runs 3-D incompressible flow; every
/// element routine in this workspace therefore assumes `NDIME == 3`.
pub const NDIME: usize = 3;

/// Nodes of a trilinear (Q1) hexahedral element.
pub const HEX8_NODES: usize = 8;

/// Nodes of a linear (P1) tetrahedral element.
pub const TET4_NODES: usize = 4;

/// Gauss points of the standard 2×2×2 rule on a hexahedron.
pub const HEX8_GAUSS: usize = 8;

/// Gauss points of the standard 4-point rule on a tetrahedron.
pub const TET4_GAUSS: usize = 4;
