//! Small fixed-size linear algebra used by the element routines.
//!
//! The assembly kernel only ever needs 3-vectors and 3×3 matrices (Jacobians
//! of the isoparametric map, velocity gradients).  We keep these types tiny,
//! `Copy`, and allocation free so they can live in the innermost loops of the
//! kernel without touching the heap — one of the cardinal rules for hot HPC
//! code (see the Rust Performance Book chapter on heap allocations).

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A point in 3-D space.  Alias of [`Vec3`] kept for readability of APIs that
/// deal with coordinates rather than directions.
pub type Point3 = Vec3;

/// A 3-component double-precision vector.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Builds a vector from a `[f64; 3]` array.
    #[inline]
    pub const fn from_array(a: [f64; 3]) -> Self {
        Vec3 { x: a[0], y: a[1], z: a[2] }
    }

    /// Returns the components as a `[f64; 3]` array.
    #[inline]
    pub const fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * other.z - self.z * other.y,
            y: self.z * other.x - self.x * other.z,
            z: self.x * other.y - self.y * other.x,
        }
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Returns a unit vector in the same direction.
    ///
    /// # Panics
    /// Panics in debug builds if the vector has (near-)zero length.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        debug_assert!(n > 0.0, "cannot normalize a zero vector");
        self / n
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Vec3) -> Vec3 {
        Vec3::new(self.x.min(other.x), self.y.min(other.y), self.z.min(other.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Vec3) -> Vec3 {
        Vec3::new(self.x.max(other.x), self.y.max(other.y), self.z.max(other.z))
    }

    /// Distance to another point.
    #[inline]
    pub fn distance(self, other: Vec3) -> f64 {
        (self - other).norm()
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;

    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        self.x += o.x;
        self.y += o.y;
        self.z += o.z;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        self.x -= o.x;
        self.y -= o.y;
        self.z -= o.z;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

/// A 3×3 row-major double-precision matrix.
///
/// Used for the Jacobian of the isoparametric mapping and for velocity
/// gradients at integration points.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mat3 {
    /// Row-major entries, `m[row][col]`.
    pub m: [[f64; 3]; 3],
}

impl Default for Mat3 {
    fn default() -> Self {
        Mat3::ZERO
    }
}

impl Mat3 {
    /// The zero matrix.
    pub const ZERO: Mat3 = Mat3 { m: [[0.0; 3]; 3] };

    /// The identity matrix.
    pub const IDENTITY: Mat3 = Mat3 { m: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]] };

    /// Builds a matrix from row-major entries.
    #[inline]
    pub const fn from_rows(m: [[f64; 3]; 3]) -> Self {
        Mat3 { m }
    }

    /// Builds a matrix from three column vectors.
    #[inline]
    pub fn from_columns(c0: Vec3, c1: Vec3, c2: Vec3) -> Self {
        Mat3 { m: [[c0.x, c1.x, c2.x], [c0.y, c1.y, c2.y], [c0.z, c1.z, c2.z]] }
    }

    /// Returns row `i` as a [`Vec3`].
    #[inline]
    pub fn row(&self, i: usize) -> Vec3 {
        Vec3::from_array(self.m[i])
    }

    /// Returns column `j` as a [`Vec3`].
    #[inline]
    pub fn col(&self, j: usize) -> Vec3 {
        Vec3::new(self.m[0][j], self.m[1][j], self.m[2][j])
    }

    /// Determinant.
    #[inline]
    pub fn det(&self) -> f64 {
        let m = &self.m;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }

    /// Transpose.
    #[inline]
    pub fn transpose(&self) -> Mat3 {
        let m = &self.m;
        Mat3::from_rows([
            [m[0][0], m[1][0], m[2][0]],
            [m[0][1], m[1][1], m[2][1]],
            [m[0][2], m[1][2], m[2][2]],
        ])
    }

    /// Inverse.  Returns `None` if the matrix is singular (|det| below
    /// `1e-300`), which for a Jacobian indicates a degenerate element.
    pub fn inverse(&self) -> Option<Mat3> {
        let d = self.det();
        if d.abs() < 1e-300 {
            return None;
        }
        let inv_d = 1.0 / d;
        let m = &self.m;
        let mut out = [[0.0; 3]; 3];
        out[0][0] = (m[1][1] * m[2][2] - m[1][2] * m[2][1]) * inv_d;
        out[0][1] = (m[0][2] * m[2][1] - m[0][1] * m[2][2]) * inv_d;
        out[0][2] = (m[0][1] * m[1][2] - m[0][2] * m[1][1]) * inv_d;
        out[1][0] = (m[1][2] * m[2][0] - m[1][0] * m[2][2]) * inv_d;
        out[1][1] = (m[0][0] * m[2][2] - m[0][2] * m[2][0]) * inv_d;
        out[1][2] = (m[0][2] * m[1][0] - m[0][0] * m[1][2]) * inv_d;
        out[2][0] = (m[1][0] * m[2][1] - m[1][1] * m[2][0]) * inv_d;
        out[2][1] = (m[0][1] * m[2][0] - m[0][0] * m[2][1]) * inv_d;
        out[2][2] = (m[0][0] * m[1][1] - m[0][1] * m[1][0]) * inv_d;
        Some(Mat3::from_rows(out))
    }

    /// Matrix–vector product.
    #[inline]
    pub fn mul_vec(&self, v: Vec3) -> Vec3 {
        Vec3::new(self.row(0).dot(v), self.row(1).dot(v), self.row(2).dot(v))
    }

    /// Matrix–matrix product.
    #[inline]
    pub fn mul_mat(&self, o: &Mat3) -> Mat3 {
        let mut out = Mat3::ZERO;
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for (k, ok) in o.m.iter().enumerate() {
                    s += self.m[i][k] * ok[j];
                }
                out.m[i][j] = s;
            }
        }
        out
    }

    /// Frobenius norm.
    #[inline]
    pub fn frobenius_norm(&self) -> f64 {
        self.m.iter().flat_map(|r| r.iter()).map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Trace (sum of diagonal entries).
    #[inline]
    pub fn trace(&self) -> f64 {
        self.m[0][0] + self.m[1][1] + self.m[2][2]
    }
}

impl Index<(usize, usize)> for Mat3 {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.m[i][j]
    }
}

impl IndexMut<(usize, usize)> for Mat3 {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.m[i][j]
    }
}

impl Mul<f64> for Mat3 {
    type Output = Mat3;
    #[inline]
    fn mul(self, s: f64) -> Mat3 {
        let mut out = self;
        for r in out.m.iter_mut() {
            for v in r.iter_mut() {
                *v *= s;
            }
        }
        out
    }
}

impl Add for Mat3 {
    type Output = Mat3;
    #[inline]
    fn add(self, o: Mat3) -> Mat3 {
        let mut out = self;
        for (r, or) in out.m.iter_mut().zip(o.m.iter()) {
            for (v, ov) in r.iter_mut().zip(or.iter()) {
                *v += ov;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn vec3_basic_arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        assert!(approx(a.dot(b), 32.0));
    }

    #[test]
    fn vec3_cross_is_orthogonal() {
        let a = Vec3::new(1.0, 0.5, -2.0);
        let b = Vec3::new(-0.25, 3.0, 1.0);
        let c = a.cross(b);
        assert!(approx(c.dot(a), 0.0));
        assert!(approx(c.dot(b), 0.0));
    }

    #[test]
    fn vec3_norm_and_normalize() {
        let a = Vec3::new(3.0, 4.0, 0.0);
        assert!(approx(a.norm(), 5.0));
        assert!(approx(a.normalized().norm(), 1.0));
        assert!(approx(a.norm_sq(), 25.0));
    }

    #[test]
    fn vec3_indexing_roundtrip() {
        let mut a = Vec3::new(1.0, 2.0, 3.0);
        for i in 0..3 {
            a[i] += 1.0;
        }
        assert_eq!(a.to_array(), [2.0, 3.0, 4.0]);
        assert_eq!(Vec3::from_array([2.0, 3.0, 4.0]), a);
    }

    #[test]
    #[should_panic]
    fn vec3_out_of_range_index_panics() {
        let a = Vec3::ZERO;
        let _ = a[3];
    }

    #[test]
    fn mat3_identity_and_det() {
        assert!(approx(Mat3::IDENTITY.det(), 1.0));
        assert!(approx(Mat3::ZERO.det(), 0.0));
        let m = Mat3::from_rows([[2.0, 0.0, 0.0], [0.0, 3.0, 0.0], [0.0, 0.0, 4.0]]);
        assert!(approx(m.det(), 24.0));
        assert!(approx(m.trace(), 9.0));
    }

    #[test]
    fn mat3_inverse_roundtrip() {
        let m = Mat3::from_rows([[2.0, 1.0, 0.5], [-1.0, 3.0, 0.0], [0.25, 0.0, 1.5]]);
        let inv = m.inverse().expect("matrix is invertible");
        let id = m.mul_mat(&inv);
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((id[(i, j)] - expect).abs() < 1e-12, "entry ({i},{j})");
            }
        }
    }

    #[test]
    fn mat3_singular_has_no_inverse() {
        let m = Mat3::from_rows([[1.0, 2.0, 3.0], [2.0, 4.0, 6.0], [0.0, 1.0, 0.0]]);
        assert!(m.inverse().is_none());
    }

    #[test]
    fn mat3_mul_vec_matches_rows() {
        let m = Mat3::from_rows([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 9.0]]);
        let v = Vec3::new(1.0, 1.0, 1.0);
        assert_eq!(m.mul_vec(v), Vec3::new(6.0, 15.0, 24.0));
    }

    #[test]
    fn mat3_transpose_involution() {
        let m = Mat3::from_rows([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 9.0]]);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn mat3_from_columns_matches_cols() {
        let c0 = Vec3::new(1.0, 2.0, 3.0);
        let c1 = Vec3::new(4.0, 5.0, 6.0);
        let c2 = Vec3::new(7.0, 8.0, 9.0);
        let m = Mat3::from_columns(c0, c1, c2);
        assert_eq!(m.col(0), c0);
        assert_eq!(m.col(1), c1);
        assert_eq!(m.col(2), c2);
    }
}
