//! Nodal fields (scalars and vectors) defined over a mesh.
//!
//! The Nastin assembly consumes the current velocity field (for the
//! convective term and the stabilization parameters) and produces a residual
//! and a matrix; examples additionally carry a pressure field.  Fields are
//! stored as flat arrays in the same layout Alya uses (`veloc(ndime, npoin)`
//! flattened), which is what phases 1–2 gather from.

use crate::geometry::Vec3;
use crate::mesh::{BoundaryTag, Mesh};
use crate::NDIME;
use serde::{Deserialize, Serialize};

/// A scalar nodal field (e.g. pressure).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Field {
    values: Vec<f64>,
}

impl Field {
    /// Creates a zero field over `mesh`.
    pub fn zeros(mesh: &Mesh) -> Self {
        Field { values: vec![0.0; mesh.num_nodes()] }
    }

    /// Creates a field with every node set to `value`.
    pub fn constant(mesh: &Mesh, value: f64) -> Self {
        Field { values: vec![value; mesh.num_nodes()] }
    }

    /// Creates a field by evaluating `f` at every node position.
    pub fn from_fn(mesh: &Mesh, mut f: impl FnMut(Vec3) -> f64) -> Self {
        let values = (0..mesh.num_nodes()).map(|n| f(mesh.node_coords(n))).collect();
        Field { values }
    }

    /// Wraps an existing value array.
    ///
    /// # Panics
    /// Panics if the length does not match the node count.
    pub fn from_values(mesh: &Mesh, values: Vec<f64>) -> Self {
        assert_eq!(values.len(), mesh.num_nodes());
        Field { values }
    }

    /// Value at node `n`.
    #[inline]
    pub fn value(&self, n: usize) -> f64 {
        self.values[n]
    }

    /// Mutable value at node `n`.
    #[inline]
    pub fn value_mut(&mut self, n: usize) -> &mut f64 {
        &mut self.values[n]
    }

    /// Underlying flat storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Mutable flat storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the field has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Maximum absolute value (∞-norm).
    pub fn max_abs(&self) -> f64 {
        self.values.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

/// A vector (per-node `NDIME`-component) field, e.g. velocity.
///
/// Storage is `values[NDIME*node + dim]`, matching the `veloc(:, ipoin)`
/// layout gathered by phase 2 of the mini-app.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VectorField {
    values: Vec<f64>,
}

impl VectorField {
    /// Creates a zero vector field over `mesh`.
    pub fn zeros(mesh: &Mesh) -> Self {
        VectorField { values: vec![0.0; NDIME * mesh.num_nodes()] }
    }

    /// Creates a field with every node set to `value`.
    pub fn constant(mesh: &Mesh, value: Vec3) -> Self {
        let mut values = Vec::with_capacity(NDIME * mesh.num_nodes());
        for _ in 0..mesh.num_nodes() {
            values.extend_from_slice(&value.to_array());
        }
        VectorField { values }
    }

    /// Creates a field by evaluating `f` at every node position.
    pub fn from_fn(mesh: &Mesh, mut f: impl FnMut(Vec3) -> Vec3) -> Self {
        let mut values = Vec::with_capacity(NDIME * mesh.num_nodes());
        for n in 0..mesh.num_nodes() {
            values.extend_from_slice(&f(mesh.node_coords(n)).to_array());
        }
        VectorField { values }
    }

    /// A synthetic Taylor–Green-like velocity field, used by the examples and
    /// benches as the "current velocity" the assembly linearizes around.  It
    /// is smooth, divergence-free and has O(1) magnitude.
    pub fn taylor_green(mesh: &Mesh) -> Self {
        use std::f64::consts::PI;
        Self::from_fn(mesh, |p| {
            Vec3::new(
                (PI * p.x).sin() * (PI * p.y).cos() * (PI * p.z).cos(),
                -(PI * p.x).cos() * (PI * p.y).sin() * (PI * p.z).cos(),
                0.0,
            )
        })
    }

    /// Applies Dirichlet boundary conditions in-place: wall nodes get zero
    /// velocity, lid nodes get `lid_velocity`, inflow nodes get
    /// `inflow_velocity`.
    pub fn apply_boundary_conditions(
        &mut self,
        mesh: &Mesh,
        lid_velocity: Vec3,
        inflow_velocity: Vec3,
    ) {
        for n in 0..mesh.num_nodes() {
            let v = match mesh.boundary_tag(n) {
                BoundaryTag::Wall => Some(Vec3::ZERO),
                BoundaryTag::Lid => Some(lid_velocity),
                BoundaryTag::Inflow => Some(inflow_velocity),
                BoundaryTag::Interior | BoundaryTag::Outflow => None,
            };
            if let Some(v) = v {
                self.set(n, v);
            }
        }
    }

    /// Velocity at node `n`.
    #[inline]
    pub fn get(&self, n: usize) -> Vec3 {
        let b = NDIME * n;
        Vec3::new(self.values[b], self.values[b + 1], self.values[b + 2])
    }

    /// Sets the velocity at node `n`.
    #[inline]
    pub fn set(&mut self, n: usize, v: Vec3) {
        let b = NDIME * n;
        self.values[b] = v.x;
        self.values[b + 1] = v.y;
        self.values[b + 2] = v.z;
    }

    /// Component `dim` at node `n`.
    #[inline]
    pub fn component(&self, n: usize, dim: usize) -> f64 {
        self.values[NDIME * n + dim]
    }

    /// Underlying flat storage (`values[NDIME*node + dim]`).
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Mutable flat storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.values.len() / NDIME
    }

    /// Maximum velocity magnitude over the nodes.
    pub fn max_magnitude(&self) -> f64 {
        (0..self.num_nodes()).fold(0.0_f64, |m, n| m.max(self.get(n).norm()))
    }

    /// Adds `delta * scale` to this field (axpy), used by time-stepping
    /// examples.
    ///
    /// # Panics
    /// Panics if the two fields have different sizes.
    pub fn axpy(&mut self, scale: f64, delta: &VectorField) {
        assert_eq!(self.values.len(), delta.values.len());
        for (v, d) in self.values.iter_mut().zip(delta.values.iter()) {
            *v += scale * d;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structured::BoxMeshBuilder;

    fn mesh() -> Mesh {
        BoxMeshBuilder::new(3, 3, 3).lid_driven_cavity().build()
    }

    #[test]
    fn scalar_field_constructors() {
        let m = mesh();
        assert_eq!(Field::zeros(&m).len(), m.num_nodes());
        assert_eq!(Field::constant(&m, 2.5).value(7), 2.5);
        let f = Field::from_fn(&m, |p| p.x + p.y);
        assert!(f.max_abs() <= 2.0 + 1e-12);
        assert!(!f.is_empty());
    }

    #[test]
    fn scalar_field_norms() {
        let m = mesh();
        let f = Field::constant(&m, -3.0);
        assert_eq!(f.max_abs(), 3.0);
        assert!((f.norm() - 3.0 * (m.num_nodes() as f64).sqrt()).abs() < 1e-10);
    }

    #[test]
    fn vector_field_roundtrip() {
        let m = mesh();
        let mut v = VectorField::zeros(&m);
        v.set(5, Vec3::new(1.0, -2.0, 3.0));
        assert_eq!(v.get(5), Vec3::new(1.0, -2.0, 3.0));
        assert_eq!(v.component(5, 1), -2.0);
        assert_eq!(v.num_nodes(), m.num_nodes());
    }

    #[test]
    fn taylor_green_is_bounded_and_z_free() {
        let m = mesh();
        let v = VectorField::taylor_green(&m);
        assert!(v.max_magnitude() <= (2.0_f64).sqrt() + 1e-12);
        for n in 0..m.num_nodes() {
            assert_eq!(v.get(n).z, 0.0);
        }
    }

    #[test]
    fn boundary_conditions_applied_per_tag() {
        let m = mesh();
        let mut v = VectorField::constant(&m, Vec3::new(9.0, 9.0, 9.0));
        v.apply_boundary_conditions(&m, Vec3::new(1.0, 0.0, 0.0), Vec3::ZERO);
        for n in 0..m.num_nodes() {
            match m.boundary_tag(n) {
                BoundaryTag::Wall => assert_eq!(v.get(n), Vec3::ZERO),
                BoundaryTag::Lid => assert_eq!(v.get(n), Vec3::new(1.0, 0.0, 0.0)),
                BoundaryTag::Interior => assert_eq!(v.get(n), Vec3::new(9.0, 9.0, 9.0)),
                _ => {}
            }
        }
    }

    #[test]
    fn axpy_adds_scaled_field() {
        let m = mesh();
        let mut a = VectorField::constant(&m, Vec3::new(1.0, 1.0, 1.0));
        let b = VectorField::constant(&m, Vec3::new(2.0, 0.0, -2.0));
        a.axpy(0.5, &b);
        assert_eq!(a.get(0), Vec3::new(2.0, 1.0, 0.0));
    }

    #[test]
    #[should_panic]
    fn from_values_rejects_wrong_length() {
        let m = mesh();
        let _ = Field::from_values(&m, vec![0.0; 3]);
    }
}
