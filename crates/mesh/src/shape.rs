//! Shape functions and reference-space derivatives for Q1 hexahedra and P1
//! tetrahedra, tabulated at the quadrature points.
//!
//! The assembly kernel needs `N_a(ξ_g)` and `∂N_a/∂ξ_j(ξ_g)` for every local
//! node `a` and Gauss point `g`; Alya precomputes these tables once and reuses
//! them for every element, and so do we.

use crate::mesh::ElementKind;
use crate::quadrature::GaussRule;
use serde::{Deserialize, Serialize};

/// Shape-function values at one integration point: `n[a]` is `N_a(ξ)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShapeFunctions {
    /// Values per local node.
    pub n: Vec<f64>,
}

/// Reference-space shape derivatives at one integration point:
/// `d[a][j]` is `∂N_a/∂ξ_j(ξ)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShapeDerivatives {
    /// Derivatives per local node and reference direction.
    pub d: Vec<[f64; 3]>,
}

/// Precomputed table of shape functions and derivatives at every Gauss point
/// of a rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShapeTable {
    kind: ElementKind,
    functions: Vec<ShapeFunctions>,
    derivatives: Vec<ShapeDerivatives>,
}

/// Local node coordinates of the reference hexahedron, in Alya/VTK ordering.
const HEX8_REF_NODES: [[f64; 3]; 8] = [
    [-1.0, -1.0, -1.0],
    [1.0, -1.0, -1.0],
    [1.0, 1.0, -1.0],
    [-1.0, 1.0, -1.0],
    [-1.0, -1.0, 1.0],
    [1.0, -1.0, 1.0],
    [1.0, 1.0, 1.0],
    [-1.0, 1.0, 1.0],
];

impl ShapeTable {
    /// Tabulates shape functions and derivatives for `kind` at the points of
    /// `rule`.
    ///
    /// # Panics
    /// Panics if the rule was built for a different element kind.
    pub fn new(kind: ElementKind, rule: &GaussRule) -> Self {
        assert_eq!(kind, rule.kind(), "quadrature rule does not match element kind");
        let mut functions = Vec::with_capacity(rule.num_points());
        let mut derivatives = Vec::with_capacity(rule.num_points());
        for qp in rule.points() {
            let (n, d) = match kind {
                ElementKind::Hex8 => Self::hex8_at(qp.xi),
                ElementKind::Tet4 => Self::tet4_at(qp.xi),
            };
            functions.push(ShapeFunctions { n });
            derivatives.push(ShapeDerivatives { d });
        }
        ShapeTable { kind, functions, derivatives }
    }

    /// Shape-function values at Gauss point `g`.
    #[inline]
    pub fn functions(&self, g: usize) -> &ShapeFunctions {
        &self.functions[g]
    }

    /// Shape-function derivatives at Gauss point `g`.
    #[inline]
    pub fn derivatives(&self, g: usize) -> &ShapeDerivatives {
        &self.derivatives[g]
    }

    /// Number of tabulated Gauss points.
    #[inline]
    pub fn num_gauss(&self) -> usize {
        self.functions.len()
    }

    /// Number of local nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.kind.nodes()
    }

    /// Element kind of the table.
    #[inline]
    pub fn kind(&self) -> ElementKind {
        self.kind
    }

    /// Evaluates Q1 hexahedron shape functions and derivatives at reference
    /// coordinates `xi`.
    pub fn hex8_at(xi: [f64; 3]) -> (Vec<f64>, Vec<[f64; 3]>) {
        let mut n = Vec::with_capacity(8);
        let mut d = Vec::with_capacity(8);
        for re in &HEX8_REF_NODES {
            let sx = re[0];
            let sy = re[1];
            let sz = re[2];
            let fx = 1.0 + sx * xi[0];
            let fy = 1.0 + sy * xi[1];
            let fz = 1.0 + sz * xi[2];
            n.push(0.125 * fx * fy * fz);
            d.push([0.125 * sx * fy * fz, 0.125 * fx * sy * fz, 0.125 * fx * fy * sz]);
        }
        (n, d)
    }

    /// Evaluates P1 tetrahedron shape functions and derivatives at reference
    /// coordinates `xi` (barycentric-style: N0 = 1-ξ-η-ζ).
    pub fn tet4_at(xi: [f64; 3]) -> (Vec<f64>, Vec<[f64; 3]>) {
        let n = vec![1.0 - xi[0] - xi[1] - xi[2], xi[0], xi[1], xi[2]];
        let d = vec![[-1.0, -1.0, -1.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]];
        (n, d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex_table() -> ShapeTable {
        ShapeTable::new(ElementKind::Hex8, &GaussRule::hex_2x2x2())
    }

    fn tet_table() -> ShapeTable {
        ShapeTable::new(ElementKind::Tet4, &GaussRule::tet_4pt())
    }

    #[test]
    fn partition_of_unity_hex() {
        let table = hex_table();
        for g in 0..table.num_gauss() {
            let sum: f64 = table.functions(g).n.iter().sum();
            assert!((sum - 1.0).abs() < 1e-13, "gauss point {g}");
        }
    }

    #[test]
    fn partition_of_unity_tet() {
        let table = tet_table();
        for g in 0..table.num_gauss() {
            let sum: f64 = table.functions(g).n.iter().sum();
            assert!((sum - 1.0).abs() < 1e-13);
        }
    }

    #[test]
    fn derivative_sums_vanish() {
        // Sum over nodes of dN_a/dxi_j must be zero (constant field has zero
        // gradient) for both element kinds.
        for table in [hex_table(), tet_table()] {
            for g in 0..table.num_gauss() {
                for j in 0..3 {
                    let sum: f64 = table.derivatives(g).d.iter().map(|row| row[j]).sum();
                    assert!(sum.abs() < 1e-13);
                }
            }
        }
    }

    #[test]
    fn hex_shape_functions_are_nodal() {
        // N_a evaluated at reference node b equals the Kronecker delta.
        for (b, &xb) in HEX8_REF_NODES.iter().enumerate() {
            let (n, _) = ShapeTable::hex8_at(xb);
            for (a, &na) in n.iter().enumerate() {
                let expect = if a == b { 1.0 } else { 0.0 };
                assert!((na - expect).abs() < 1e-13, "N_{a}(node {b})");
            }
        }
    }

    #[test]
    fn tet_shape_functions_are_nodal() {
        let ref_nodes = [[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]];
        for (b, &xb) in ref_nodes.iter().enumerate() {
            let (n, _) = ShapeTable::tet4_at(xb);
            for (a, &na) in n.iter().enumerate() {
                let expect = if a == b { 1.0 } else { 0.0 };
                assert!((na - expect).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn hex_derivatives_reproduce_linear_field_gradient() {
        // A field f = 2x + 3y - z at the reference nodes has reference-space
        // gradient (2, 3, -1) everywhere inside the element.
        let table = hex_table();
        let coeff = [2.0, 3.0, -1.0];
        let nodal: Vec<f64> = HEX8_REF_NODES
            .iter()
            .map(|p| coeff[0] * p[0] + coeff[1] * p[1] + coeff[2] * p[2])
            .collect();
        for g in 0..table.num_gauss() {
            for j in 0..3 {
                let grad: f64 =
                    table.derivatives(g).d.iter().zip(&nodal).map(|(d, f)| d[j] * f).sum();
                assert!((grad - coeff[j]).abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic]
    fn mismatched_rule_is_rejected() {
        let _ = ShapeTable::new(ElementKind::Hex8, &GaussRule::tet_4pt());
    }

    #[test]
    fn table_dimensions() {
        let t = hex_table();
        assert_eq!(t.num_gauss(), 8);
        assert_eq!(t.num_nodes(), 8);
        assert_eq!(t.kind(), ElementKind::Hex8);
        assert_eq!(t.functions(0).n.len(), 8);
        assert_eq!(t.derivatives(0).d.len(), 8);
    }
}
