//! Structured mesh generators.
//!
//! The paper evaluates the mini-app on meshes extracted from Alya production
//! cases; those meshes are not public, so the workloads in this reproduction
//! are generated structured boxes and channels whose size is chosen so the
//! element count is large compared with every `VECTOR_SIZE` tested
//! (16 … 512).  The generators also produce the boundary tags needed by the
//! lid-driven-cavity and channel-flow examples.

use crate::geometry::Point3;
use crate::mesh::{BoundaryTag, ElementKind, Mesh};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Flow problem the generated boundary tags describe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BoundaryStyle {
    /// All exterior nodes are plain walls.
    AllWalls,
    /// Lid-driven cavity: top face (`z == max`) is a moving lid, the rest of
    /// the exterior is a no-slip wall.
    LidDrivenCavity,
    /// Channel flow: `x == min` is inflow, `x == max` is outflow, the other
    /// exterior faces are walls.
    Channel,
}

/// Builder for a structured hexahedral mesh of an axis-aligned box.
///
/// ```
/// use lv_mesh::BoxMeshBuilder;
/// let mesh = BoxMeshBuilder::new(8, 8, 8).build();
/// assert_eq!(mesh.num_elements(), 512);
/// ```
#[derive(Debug, Clone)]
pub struct BoxMeshBuilder {
    nx: usize,
    ny: usize,
    nz: usize,
    origin: Point3,
    lengths: [f64; 3],
    style: BoundaryStyle,
    jitter: f64,
    seed: u64,
}

impl BoxMeshBuilder {
    /// Creates a builder for an `nx × ny × nz` element box spanning the unit
    /// cube.
    ///
    /// # Panics
    /// Panics if any direction has zero elements.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "element counts must be positive");
        BoxMeshBuilder {
            nx,
            ny,
            nz,
            origin: Point3::ZERO,
            lengths: [1.0, 1.0, 1.0],
            style: BoundaryStyle::AllWalls,
            jitter: 0.0,
            seed: 0x5eed_cafe,
        }
    }

    /// Creates a builder sized so the mesh holds *at least* `min_elements`
    /// elements, as a roughly cubic box.  Convenient for the benches, which
    /// only care that the element count comfortably exceeds the largest
    /// `VECTOR_SIZE`.
    pub fn with_at_least(min_elements: usize) -> Self {
        let n = (min_elements as f64).cbrt().ceil().max(1.0) as usize;
        BoxMeshBuilder::new(n, n, n)
    }

    /// Sets the physical extent of the box.
    pub fn with_extent(mut self, origin: Point3, lengths: [f64; 3]) -> Self {
        assert!(lengths.iter().all(|&l| l > 0.0), "box lengths must be positive");
        self.origin = origin;
        self.lengths = lengths;
        self
    }

    /// Perturbs interior nodes by a fraction `jitter` of the local element
    /// size (0.0 ≤ jitter < 0.5), producing a mildly unstructured mesh so the
    /// Jacobians are not all identical.
    pub fn with_jitter(mut self, jitter: f64, seed: u64) -> Self {
        assert!((0.0..0.5).contains(&jitter), "jitter must be in [0, 0.5)");
        self.jitter = jitter;
        self.seed = seed;
        self
    }

    /// Tags the boundary for a lid-driven cavity problem.
    pub fn lid_driven_cavity(mut self) -> Self {
        self.style = BoundaryStyle::LidDrivenCavity;
        self
    }

    /// Tags the boundary for a channel-flow problem (inflow at x-min, outflow
    /// at x-max).
    pub fn channel_flow(mut self) -> Self {
        self.style = BoundaryStyle::Channel;
        self
    }

    /// Number of elements the built mesh will contain.
    pub fn num_elements(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Builds the mesh.
    pub fn build(&self) -> Mesh {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        let (px, py, pz) = (nx + 1, ny + 1, nz + 1);
        let nnode = px * py * pz;
        let dx = self.lengths[0] / nx as f64;
        let dy = self.lengths[1] / ny as f64;
        let dz = self.lengths[2] / nz as f64;

        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut coords = Vec::with_capacity(3 * nnode);
        let mut boundary = Vec::with_capacity(nnode);
        for k in 0..pz {
            for j in 0..py {
                for i in 0..px {
                    let on_boundary = i == 0 || j == 0 || k == 0 || i == nx || j == ny || k == nz;
                    let mut x = self.origin.x + i as f64 * dx;
                    let mut y = self.origin.y + j as f64 * dy;
                    let mut z = self.origin.z + k as f64 * dz;
                    if self.jitter > 0.0 && !on_boundary {
                        x += dx * self.jitter * rng.gen_range(-1.0..1.0);
                        y += dy * self.jitter * rng.gen_range(-1.0..1.0);
                        z += dz * self.jitter * rng.gen_range(-1.0..1.0);
                    }
                    coords.push(x);
                    coords.push(y);
                    coords.push(z);
                    boundary.push(self.tag_for(i, j, k));
                }
            }
        }

        let node_id = |i: usize, j: usize, k: usize| -> u32 { (k * py * px + j * px + i) as u32 };
        let mut lnods = Vec::with_capacity(8 * nx * ny * nz);
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    // VTK/Alya hexahedron node ordering (bottom face CCW, then
                    // top face CCW), matching HEX8_REF_NODES in `shape.rs`.
                    lnods.push(node_id(i, j, k));
                    lnods.push(node_id(i + 1, j, k));
                    lnods.push(node_id(i + 1, j + 1, k));
                    lnods.push(node_id(i, j + 1, k));
                    lnods.push(node_id(i, j, k + 1));
                    lnods.push(node_id(i + 1, j, k + 1));
                    lnods.push(node_id(i + 1, j + 1, k + 1));
                    lnods.push(node_id(i, j + 1, k + 1));
                }
            }
        }

        let h_char = dx.min(dy).min(dz);
        Mesh::from_raw(ElementKind::Hex8, coords, lnods, boundary, h_char)
    }

    fn tag_for(&self, i: usize, j: usize, k: usize) -> BoundaryTag {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        let on_boundary = i == 0 || j == 0 || k == 0 || i == nx || j == ny || k == nz;
        if !on_boundary {
            return BoundaryTag::Interior;
        }
        match self.style {
            BoundaryStyle::AllWalls => BoundaryTag::Wall,
            BoundaryStyle::LidDrivenCavity => {
                if k == nz {
                    BoundaryTag::Lid
                } else {
                    BoundaryTag::Wall
                }
            }
            BoundaryStyle::Channel => {
                if i == 0 {
                    BoundaryTag::Inflow
                } else if i == nx {
                    BoundaryTag::Outflow
                } else {
                    BoundaryTag::Wall
                }
            }
        }
    }
}

/// Builder for a channel mesh (elongated box with inflow/outflow tags),
/// the workload motivating the paper's introduction (external/internal
/// aerodynamic flows dominated by the assembly cost).
#[derive(Debug, Clone)]
pub struct ChannelMeshBuilder {
    inner: BoxMeshBuilder,
}

impl ChannelMeshBuilder {
    /// Creates a channel `length_factor` times longer in x than its square
    /// cross-section of `n × n` elements.
    ///
    /// # Panics
    /// Panics if `n == 0` or `length_factor == 0`.
    pub fn new(n: usize, length_factor: usize) -> Self {
        assert!(n > 0 && length_factor > 0);
        let inner = BoxMeshBuilder::new(n * length_factor, n, n)
            .with_extent(Point3::ZERO, [length_factor as f64, 1.0, 1.0])
            .channel_flow();
        ChannelMeshBuilder { inner }
    }

    /// Adds interior-node jitter (see [`BoxMeshBuilder::with_jitter`]).
    pub fn with_jitter(mut self, jitter: f64, seed: u64) -> Self {
        self.inner = self.inner.with_jitter(jitter, seed);
        self
    }

    /// Number of elements the built mesh will contain.
    pub fn num_elements(&self) -> usize {
        self.inner.num_elements()
    }

    /// Builds the channel mesh.
    pub fn build(&self) -> Mesh {
        self.inner.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_mesh_has_expected_counts() {
        let b = BoxMeshBuilder::new(5, 3, 2);
        assert_eq!(b.num_elements(), 30);
        let m = b.build();
        assert_eq!(m.num_elements(), 30);
        assert_eq!(m.num_nodes(), 6 * 4 * 3);
    }

    #[test]
    fn with_at_least_generates_enough_elements() {
        for min in [1, 100, 600, 5000] {
            let b = BoxMeshBuilder::with_at_least(min);
            assert!(b.num_elements() >= min, "requested {min}, got {}", b.num_elements());
        }
    }

    #[test]
    fn jittered_mesh_keeps_positive_volumes() {
        let m = BoxMeshBuilder::new(6, 6, 6).with_jitter(0.25, 42).build();
        for e in m.elements() {
            assert!(m.element_volume(e) > 0.0, "element {e} inverted by jitter");
        }
    }

    #[test]
    fn jittered_mesh_preserves_total_volume_roughly() {
        // Jitter moves only interior nodes, so the total volume is conserved
        // exactly (it is a re-triangulation of the same box).
        let m = BoxMeshBuilder::new(5, 5, 5).with_jitter(0.2, 7).build();
        assert!((m.total_volume() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn channel_mesh_boundary_tags() {
        let m = ChannelMeshBuilder::new(4, 3).build();
        let hist = m.boundary_histogram();
        assert!(hist[1] > 0, "channel mesh must have inflow nodes");
        assert!(hist[2] > 0, "channel mesh must have outflow nodes");
        assert!(hist[3] > 0, "channel mesh must have wall nodes");
        assert_eq!(hist[4], 0, "channel mesh has no lid nodes");
    }

    #[test]
    fn cavity_mesh_lid_is_top_face_only() {
        let builder = BoxMeshBuilder::new(4, 4, 4).lid_driven_cavity();
        let m = builder.build();
        for n in 0..m.num_nodes() {
            if m.boundary_tag(n) == BoundaryTag::Lid {
                assert!((m.node_coords(n).z - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn custom_extent_respected() {
        let m = BoxMeshBuilder::new(2, 2, 2)
            .with_extent(Point3::new(-1.0, 0.0, 2.0), [2.0, 4.0, 6.0])
            .build();
        let (lo, hi) = m.bounding_box();
        assert!(lo.distance(Point3::new(-1.0, 0.0, 2.0)) < 1e-12);
        assert!(hi.distance(Point3::new(1.0, 4.0, 8.0)) < 1e-12);
        assert!((m.total_volume() - 48.0).abs() < 1e-8);
    }

    #[test]
    #[should_panic]
    fn zero_elements_rejected() {
        let _ = BoxMeshBuilder::new(0, 1, 1);
    }

    #[test]
    #[should_panic]
    fn excessive_jitter_rejected() {
        let _ = BoxMeshBuilder::new(2, 2, 2).with_jitter(0.6, 1);
    }
}
