//! Packing of elements into `VECTOR_SIZE` blocks.
//!
//! `VECTOR_SIZE` is the Alya compile-time parameter the paper sweeps
//! (16, 64, 128, 240, 256, 512): the assembly kernel is called once per block
//! of `VECTOR_SIZE` elements, and all element-local arrays carry the block
//! index as their fastest (or slowest, depending on the code variant)
//! dimension.  This module produces those blocks from a mesh, including the
//! final partially-filled block, whose "invalid element" padding is exactly
//! what phase 8 checks before scattering.

use crate::mesh::Mesh;
use serde::{Deserialize, Serialize};

/// The `VECTOR_SIZE` values studied in the paper, in the order the figures
/// report them.  The value 240 is the micro-architectural sweet spot of the
/// RISC-V VEC prototype (multiple of 8 lanes × 5 FSM stages).
pub const PAPER_VECTOR_SIZES: [usize; 6] = [16, 64, 128, 240, 256, 512];

/// A block of up to `VECTOR_SIZE` elements processed by one kernel call.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ElementChunk {
    /// Index of the first element of the chunk in the mesh ordering.
    pub first_element: usize,
    /// Number of *valid* elements in the chunk (≤ `vector_size`).
    pub len: usize,
    /// The configured `VECTOR_SIZE` (the padded chunk width).
    pub vector_size: usize,
}

impl ElementChunk {
    /// Global element id of the `i`-th slot, or `None` if the slot is padding.
    #[inline]
    pub fn element(&self, i: usize) -> Option<usize> {
        if i < self.len {
            Some(self.first_element + i)
        } else {
            None
        }
    }

    /// Whether the chunk is full (no padding slots).
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len == self.vector_size
    }

    /// Number of padding slots (`vector_size - len`).
    #[inline]
    pub fn padding(&self) -> usize {
        self.vector_size - self.len
    }

    /// Iterator over the valid global element ids of the chunk.
    pub fn elements(&self) -> impl Iterator<Item = usize> + '_ {
        self.first_element..self.first_element + self.len
    }
}

/// A borrowed slot→element map of one kernel call: the valid element ids of
/// the block plus the padded block width.
///
/// This is the schedule-agnostic form of [`ElementChunk`]: a contiguous
/// mesh-order chunk and a colored chunk (see [`crate::coloring`]) both reduce
/// to "a list of element ids padded to `VECTOR_SIZE` slots", which is all the
/// slice-view kernel phases need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkSlots<'a> {
    /// Global element ids of the valid slots (`len() ≤ vector_size`).
    pub elements: &'a [usize],
    /// The padded block width (`VECTOR_SIZE`).
    pub vector_size: usize,
}

impl ChunkSlots<'_> {
    /// Number of valid slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether the block holds no valid element.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Global element id of slot `i`, or `None` for padding slots.
    #[inline]
    pub fn element(&self, i: usize) -> Option<usize> {
        self.elements.get(i).copied()
    }

    /// Number of padding slots (`vector_size - len`).
    #[inline]
    pub fn padding(&self) -> usize {
        self.vector_size - self.elements.len()
    }
}

/// The partition of a mesh into `VECTOR_SIZE` blocks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ElementChunks {
    chunks: Vec<ElementChunk>,
    vector_size: usize,
    num_elements: usize,
}

impl ElementChunks {
    /// Splits the elements of `mesh` into blocks of `vector_size`.
    ///
    /// # Panics
    /// Panics if `vector_size == 0`.
    pub fn new(mesh: &Mesh, vector_size: usize) -> Self {
        Self::from_element_count(mesh.num_elements(), vector_size)
    }

    /// Splits `num_elements` elements into blocks of `vector_size` without
    /// needing the mesh itself (used by the simulator-side workload model).
    pub fn from_element_count(num_elements: usize, vector_size: usize) -> Self {
        assert!(vector_size > 0, "VECTOR_SIZE must be positive");
        let mut chunks = Vec::with_capacity(num_elements.div_ceil(vector_size));
        let mut first = 0;
        while first < num_elements {
            let len = vector_size.min(num_elements - first);
            chunks.push(ElementChunk { first_element: first, len, vector_size });
            first += len;
        }
        ElementChunks { chunks, vector_size, num_elements }
    }

    /// The configured `VECTOR_SIZE`.
    #[inline]
    pub fn vector_size(&self) -> usize {
        self.vector_size
    }

    /// Total number of (valid) elements covered.
    #[inline]
    pub fn num_elements(&self) -> usize {
        self.num_elements
    }

    /// Number of blocks (kernel calls).
    #[inline]
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Number of full blocks.
    pub fn num_full_chunks(&self) -> usize {
        self.chunks.iter().filter(|c| c.is_full()).count()
    }

    /// The blocks.
    #[inline]
    pub fn chunks(&self) -> &[ElementChunk] {
        &self.chunks
    }

    /// Iterator over the blocks.
    pub fn iter(&self) -> impl Iterator<Item = &ElementChunk> {
        self.chunks.iter()
    }
}

impl<'a> IntoIterator for &'a ElementChunks {
    type Item = &'a ElementChunk;
    type IntoIter = std::slice::Iter<'a, ElementChunk>;
    fn into_iter(self) -> Self::IntoIter {
        self.chunks.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structured::BoxMeshBuilder;

    #[test]
    fn paper_vector_sizes_are_the_documented_sweep() {
        assert_eq!(PAPER_VECTOR_SIZES, [16, 64, 128, 240, 256, 512]);
    }

    #[test]
    fn chunks_cover_all_elements_exactly_once() {
        let mesh = BoxMeshBuilder::new(7, 5, 3).build(); // 105 elements
        let chunks = ElementChunks::new(&mesh, 16);
        let mut seen = vec![false; mesh.num_elements()];
        for chunk in &chunks {
            for e in chunk.elements() {
                assert!(!seen[e], "element {e} appears twice");
                seen[e] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some element was not covered");
        assert_eq!(chunks.num_chunks(), 7); // ceil(105/16)
        assert_eq!(chunks.num_full_chunks(), 6);
    }

    #[test]
    fn last_chunk_padding() {
        let chunks = ElementChunks::from_element_count(100, 16);
        let last = chunks.chunks().last().unwrap();
        assert_eq!(last.len, 4);
        assert_eq!(last.padding(), 12);
        assert!(!last.is_full());
        assert_eq!(last.element(3), Some(99));
        assert_eq!(last.element(4), None);
    }

    #[test]
    fn exact_multiple_has_no_padding() {
        let chunks = ElementChunks::from_element_count(512, 256);
        assert_eq!(chunks.num_chunks(), 2);
        assert!(chunks.iter().all(|c| c.is_full()));
    }

    #[test]
    #[should_panic]
    fn zero_vector_size_rejected() {
        let _ = ElementChunks::from_element_count(10, 0);
    }

    #[test]
    fn chunks_partition_elements() {
        // Exhaustive sweep over the paper's VECTOR_SIZEs crossed with element
        // counts around every blocking edge case (registry-free builds have
        // no proptest; the interesting boundary values are enumerable).
        for &vs in &PAPER_VECTOR_SIZES {
            for nelem in [1, 2, vs - 1, vs, vs + 1, 2 * vs - 1, 2 * vs, 997, 4999] {
                let chunks = ElementChunks::from_element_count(nelem, vs);
                // Total valid elements equals nelem.
                let total: usize = chunks.iter().map(|c| c.len).sum();
                assert_eq!(total, nelem);
                // Every chunk except possibly the last is full.
                for (i, c) in chunks.iter().enumerate() {
                    if i + 1 < chunks.num_chunks() {
                        assert!(c.is_full(), "nelem={nelem} vs={vs}: chunk {i} not full");
                    }
                    assert!(c.len >= 1);
                    assert_eq!(c.vector_size, vs);
                }
                // Chunks are contiguous and ordered.
                let mut expected_first = 0;
                for c in &chunks {
                    assert_eq!(c.first_element, expected_first);
                    expected_first += c.len;
                }
            }
        }
    }
}
