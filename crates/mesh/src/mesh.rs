//! The [`Mesh`] container: node coordinates, element connectivity and
//! boundary tags.
//!
//! The mini-app of the paper processes elements in blocks of `VECTOR_SIZE`
//! elements; within a block the nodal data of every element is gathered from
//! the global (mesh-level) structures into element-local structures (phases 1
//! and 2), processed (phases 3–7) and scattered back (phase 8).  The mesh is
//! therefore stored in the same "global array + connectivity" form that Alya
//! uses: flat coordinate arrays indexed by node id, plus an `lnods`-style
//! connectivity table indexed by element id.

use crate::geometry::Point3;
use crate::{HEX8_NODES, TET4_NODES};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Kind of finite element stored in a mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ElementKind {
    /// 8-node trilinear hexahedron (Q1).
    Hex8,
    /// 4-node linear tetrahedron (P1).
    Tet4,
}

impl ElementKind {
    /// Number of nodes per element (`pnode` in Alya nomenclature).
    #[inline]
    pub const fn nodes(self) -> usize {
        match self {
            ElementKind::Hex8 => HEX8_NODES,
            ElementKind::Tet4 => TET4_NODES,
        }
    }

    /// Number of Gauss integration points used by the default rule
    /// (`pgaus` in Alya nomenclature).
    #[inline]
    pub const fn gauss_points(self) -> usize {
        match self {
            ElementKind::Hex8 => crate::HEX8_GAUSS,
            ElementKind::Tet4 => crate::TET4_GAUSS,
        }
    }

    /// Human readable name.
    pub const fn name(self) -> &'static str {
        match self {
            ElementKind::Hex8 => "HEX08",
            ElementKind::Tet4 => "TET04",
        }
    }
}

/// Tag identifying where a node sits on the domain boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BoundaryTag {
    /// Interior node (no boundary condition).
    Interior,
    /// Inflow boundary (prescribed velocity).
    Inflow,
    /// Outflow boundary (natural condition).
    Outflow,
    /// No-slip wall.
    Wall,
    /// Moving lid (used by the lid-driven cavity example).
    Lid,
}

/// An unstructured finite-element mesh with a single element kind.
///
/// All storage is flat (`Vec<f64>` / `Vec<u32>`) so the assembly kernel can
/// index it exactly like Alya indexes its Fortran arrays, and so the
/// simulated memory-access streams of phases 1, 2 and 8 are realistic
/// (indexed gathers through the connectivity).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mesh {
    kind: ElementKind,
    /// Node coordinates, `coords[3*node + dim]`.
    coords: Vec<f64>,
    /// Element connectivity, `lnods[pnode*elem + local_node]` (node ids).
    lnods: Vec<u32>,
    /// Per-node boundary tag.
    boundary: Vec<BoundaryTag>,
    /// Characteristic element length (uniform for generated meshes).
    h_char: f64,
}

impl Mesh {
    /// Creates a mesh from raw arrays.
    ///
    /// # Panics
    /// Panics if the coordinate array length is not a multiple of 3, if the
    /// connectivity length is not a multiple of the element node count, if
    /// any connectivity entry refers to a non-existent node, or if the
    /// boundary tag array length does not match the node count.
    pub fn from_raw(
        kind: ElementKind,
        coords: Vec<f64>,
        lnods: Vec<u32>,
        boundary: Vec<BoundaryTag>,
        h_char: f64,
    ) -> Self {
        assert!(
            coords.len() % 3 == 0,
            "coordinate array length {} is not a multiple of 3",
            coords.len()
        );
        let nnode = coords.len() / 3;
        assert!(
            lnods.len() % kind.nodes() == 0,
            "connectivity length {} is not a multiple of pnode={}",
            lnods.len(),
            kind.nodes()
        );
        assert_eq!(boundary.len(), nnode, "boundary tag count must match node count");
        assert!(
            lnods.iter().all(|&n| (n as usize) < nnode),
            "connectivity references a node outside the mesh"
        );
        assert!(h_char > 0.0, "characteristic length must be positive");
        Mesh { kind, coords, lnods, boundary, h_char }
    }

    /// Element kind of the mesh.
    #[inline]
    pub fn kind(&self) -> ElementKind {
        self.kind
    }

    /// Number of nodes (`npoin`).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.coords.len() / 3
    }

    /// Number of elements (`nelem`).
    #[inline]
    pub fn num_elements(&self) -> usize {
        self.lnods.len() / self.kind.nodes()
    }

    /// Nodes per element (`pnode`).
    #[inline]
    pub fn nodes_per_element(&self) -> usize {
        self.kind.nodes()
    }

    /// Characteristic element length used by the stabilization terms.
    #[inline]
    pub fn characteristic_length(&self) -> f64 {
        self.h_char
    }

    /// Coordinates of node `node`.
    #[inline]
    pub fn node_coords(&self, node: usize) -> Point3 {
        let base = 3 * node;
        Point3::new(self.coords[base], self.coords[base + 1], self.coords[base + 2])
    }

    /// Flat coordinate array (`coords[3*node + dim]`).
    #[inline]
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Connectivity of element `elem` (slice of `pnode` node ids).
    #[inline]
    pub fn element_nodes(&self, elem: usize) -> &[u32] {
        let pnode = self.kind.nodes();
        &self.lnods[pnode * elem..pnode * (elem + 1)]
    }

    /// Whole connectivity array (`lnods[pnode*elem + a]`).
    #[inline]
    pub fn connectivity(&self) -> &[u32] {
        &self.lnods
    }

    /// Boundary tag of a node.
    #[inline]
    pub fn boundary_tag(&self, node: usize) -> BoundaryTag {
        self.boundary[node]
    }

    /// All boundary tags.
    #[inline]
    pub fn boundary_tags(&self) -> &[BoundaryTag] {
        &self.boundary
    }

    /// Iterator over element ids.
    pub fn elements(&self) -> impl Iterator<Item = usize> + '_ {
        0..self.num_elements()
    }

    /// Axis-aligned bounding box of the mesh as `(min, max)`.
    pub fn bounding_box(&self) -> (Point3, Point3) {
        let mut lo = Point3::splat(f64::INFINITY);
        let mut hi = Point3::splat(f64::NEG_INFINITY);
        for n in 0..self.num_nodes() {
            let p = self.node_coords(n);
            lo = lo.min(p);
            hi = hi.max(p);
        }
        (lo, hi)
    }

    /// Volume of element `elem`, computed by quadrature of the Jacobian
    /// determinant.  Used by tests to validate generated meshes.
    pub fn element_volume(&self, elem: usize) -> f64 {
        use crate::quadrature::GaussRule;
        use crate::shape::ShapeTable;
        let rule = GaussRule::for_kind(self.kind);
        let table = ShapeTable::new(self.kind, &rule);
        let nodes = self.element_nodes(elem);
        let mut vol = 0.0;
        for (g, qp) in rule.points().iter().enumerate() {
            let derivs = table.derivatives(g);
            // Jacobian J[i][j] = sum_a dN_a/dxi_j * x_a[i]
            let mut jac = crate::geometry::Mat3::ZERO;
            for (a, &node) in nodes.iter().enumerate() {
                let x = self.node_coords(node as usize);
                for i in 0..3 {
                    for j in 0..3 {
                        jac.m[i][j] += derivs.d[a][j] * x[i];
                    }
                }
            }
            vol += jac.det().abs() * qp.weight;
        }
        vol
    }

    /// Total mesh volume (sum of element volumes).
    pub fn total_volume(&self) -> f64 {
        self.elements().map(|e| self.element_volume(e)).sum()
    }

    /// Number of nodes carrying each boundary tag, in the order
    /// (interior, inflow, outflow, wall, lid).
    pub fn boundary_histogram(&self) -> [usize; 5] {
        let mut h = [0usize; 5];
        for tag in &self.boundary {
            let idx = match tag {
                BoundaryTag::Interior => 0,
                BoundaryTag::Inflow => 1,
                BoundaryTag::Outflow => 2,
                BoundaryTag::Wall => 3,
                BoundaryTag::Lid => 4,
            };
            h[idx] += 1;
        }
        h
    }

    /// Builds the sparsity pattern of the node-to-node graph in CSR form
    /// (`row_ptr`, `col_idx`), including the diagonal.  This is the pattern of
    /// the global matrix assembled in phase 8, and is consumed by
    /// `lv-solver`'s CSR constructor.
    pub fn node_graph_csr(&self) -> (Vec<usize>, Vec<usize>) {
        let nnode = self.num_nodes();
        let mut neighbours: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); nnode];
        for e in 0..self.num_elements() {
            let nodes = self.element_nodes(e);
            for &a in nodes {
                for &b in nodes {
                    neighbours[a as usize].insert(b as usize);
                }
            }
        }
        let mut row_ptr = Vec::with_capacity(nnode + 1);
        let mut col_idx = Vec::new();
        row_ptr.push(0usize);
        for set in &neighbours {
            col_idx.extend(set.iter().copied());
            row_ptr.push(col_idx.len());
        }
        (row_ptr, col_idx)
    }

    /// Checks basic structural invariants of the mesh, returning a list of
    /// human-readable problems (empty when the mesh is valid).  Used by the
    /// integration tests and the quickstart example.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.num_nodes() == 0 {
            problems.push("mesh has no nodes".to_string());
        }
        if self.num_elements() == 0 {
            problems.push("mesh has no elements".to_string());
        }
        for e in 0..self.num_elements() {
            let nodes = self.element_nodes(e);
            let unique: BTreeSet<_> = nodes.iter().collect();
            if unique.len() != nodes.len() {
                problems.push(format!("element {e} has repeated nodes"));
            }
            let vol = self.element_volume(e);
            if !(vol.is_finite() && vol > 0.0) {
                problems.push(format!("element {e} has non-positive volume {vol}"));
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structured::BoxMeshBuilder;

    #[test]
    fn element_kind_counts() {
        assert_eq!(ElementKind::Hex8.nodes(), 8);
        assert_eq!(ElementKind::Tet4.nodes(), 4);
        assert_eq!(ElementKind::Hex8.gauss_points(), 8);
        assert_eq!(ElementKind::Tet4.gauss_points(), 4);
        assert_eq!(ElementKind::Hex8.name(), "HEX08");
    }

    #[test]
    fn unit_cube_mesh_volume_is_one() {
        let mesh = BoxMeshBuilder::new(4, 4, 4).build();
        assert!((mesh.total_volume() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn mesh_counts_match_structured_generator() {
        let mesh = BoxMeshBuilder::new(3, 4, 5).build();
        assert_eq!(mesh.num_elements(), 3 * 4 * 5);
        assert_eq!(mesh.num_nodes(), 4 * 5 * 6);
        assert_eq!(mesh.nodes_per_element(), 8);
    }

    #[test]
    fn node_graph_is_symmetric_with_diagonal() {
        let mesh = BoxMeshBuilder::new(3, 3, 3).build();
        let (row_ptr, col_idx) = mesh.node_graph_csr();
        assert_eq!(row_ptr.len(), mesh.num_nodes() + 1);
        // diagonal present
        for row in 0..mesh.num_nodes() {
            let cols = &col_idx[row_ptr[row]..row_ptr[row + 1]];
            assert!(cols.contains(&row), "row {row} misses its diagonal");
            // symmetry: for each (row, c) the transpose entry exists
            for &c in cols {
                let tcols = &col_idx[row_ptr[c]..row_ptr[c + 1]];
                assert!(tcols.contains(&row), "entry ({row},{c}) not symmetric");
            }
        }
    }

    #[test]
    fn validate_accepts_generated_mesh() {
        let mesh = BoxMeshBuilder::new(2, 2, 2).build();
        assert!(mesh.validate().is_empty());
    }

    #[test]
    fn bounding_box_of_unit_cube() {
        let mesh = BoxMeshBuilder::new(2, 3, 4).build();
        let (lo, hi) = mesh.bounding_box();
        assert!(lo.distance(Point3::ZERO) < 1e-12);
        assert!(hi.distance(Point3::new(1.0, 1.0, 1.0)) < 1e-12);
    }

    #[test]
    #[should_panic]
    fn from_raw_rejects_bad_connectivity() {
        // Node id 99 does not exist in a 1-node mesh.
        let _ = Mesh::from_raw(
            ElementKind::Tet4,
            vec![0.0, 0.0, 0.0],
            vec![0, 0, 0, 99],
            vec![BoundaryTag::Interior],
            1.0,
        );
    }

    #[test]
    fn boundary_histogram_counts_all_nodes() {
        let mesh = BoxMeshBuilder::new(3, 3, 3).lid_driven_cavity().build();
        let hist = mesh.boundary_histogram();
        assert_eq!(hist.iter().sum::<usize>(), mesh.num_nodes());
        // A cavity has wall and lid nodes.
        assert!(hist[3] > 0, "expected wall nodes");
        assert!(hist[4] > 0, "expected lid nodes");
    }
}
