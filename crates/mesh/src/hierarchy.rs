//! Nested box lattices — the geometric-multigrid hierarchy of the
//! structured generators.
//!
//! The structured meshes ([`crate::BoxMeshBuilder`], the channel builder,
//! and every scenario mesh built from them) are tensor-product lattices:
//! `dims[d]` equal elements per direction, nodes ordered `i`-fastest /
//! `k`-slowest.  Halving every direction yields a *nested* coarse lattice —
//! 16³ ⊃ 8³ ⊃ 4³ ⊃ 2³ — which is exactly the hierarchy a geometric
//! multigrid solve wants.  This module provides:
//!
//! * [`BoxLattice`] — the lattice geometry, [inferred](BoxLattice::infer)
//!   from a generated mesh (bounding box + characteristic length, validated
//!   against the node count) and [coarsened](BoxLattice::coarsened) by
//!   halving;
//! * [`trilinear_stencil`] — per-fine-node trilinear interpolation weights
//!   against a coarse lattice, as raw CSR-style rows.  The solver crate
//!   wraps them into its prolongation operator; keeping only plain data
//!   here leaves `lv-mesh` free of solver dependencies.
//!
//! Inference is deliberately conservative: anything that does not look like
//! an axis-aligned uniform lattice (wrong node count, degenerate extent)
//! returns `None` and the caller falls back to a single-level solve.

use crate::mesh::Mesh;

/// An axis-aligned lattice of `dims[d]` equal elements per direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxLattice {
    /// Minimum corner of the box.
    pub origin: [f64; 3],
    /// Physical extent per direction.
    pub lengths: [f64; 3],
    /// Element counts per direction (nodes are `dims[d] + 1` per direction).
    pub dims: [usize; 3],
}

impl BoxLattice {
    /// Creates a lattice.
    ///
    /// # Panics
    /// Panics on zero element counts or non-positive lengths.
    pub fn new(origin: [f64; 3], lengths: [f64; 3], dims: [usize; 3]) -> Self {
        assert!(dims.iter().all(|&d| d > 0), "element counts must be positive");
        assert!(lengths.iter().all(|&l| l > 0.0), "lengths must be positive");
        BoxLattice { origin, lengths, dims }
    }

    /// Infers the generating lattice of a structured mesh: bounding box plus
    /// the characteristic (minimum edge) length give the per-direction
    /// element counts, validated against the node count.  Returns `None`
    /// when the mesh does not match a uniform lattice — jittered or
    /// hand-built meshes fall back to non-hierarchical solves.
    pub fn infer(mesh: &Mesh) -> Option<BoxLattice> {
        if mesh.num_nodes() == 0 {
            return None;
        }
        let mut min = [f64::INFINITY; 3];
        let mut max = [f64::NEG_INFINITY; 3];
        for node in 0..mesh.num_nodes() {
            let p = mesh.node_coords(node);
            for (d, v) in [p.x, p.y, p.z].into_iter().enumerate() {
                min[d] = min[d].min(v);
                max[d] = max[d].max(v);
            }
        }
        let h = mesh.characteristic_length();
        // NaN must bail out too, hence not `h <= 0.0`.
        if h.is_nan() || h <= 0.0 {
            return None;
        }
        let mut dims = [0usize; 3];
        let mut lengths = [0.0f64; 3];
        for d in 0..3 {
            let len = max[d] - min[d];
            if len.is_nan() || len <= 0.0 {
                return None;
            }
            let estimate = len / h;
            let rounded = estimate.round();
            if rounded < 1.0 || (estimate - rounded).abs() > 0.25 {
                return None;
            }
            dims[d] = rounded as usize;
            lengths[d] = len;
        }
        let lattice = BoxLattice { origin: min, lengths, dims };
        (lattice.num_nodes() == mesh.num_nodes()).then_some(lattice)
    }

    /// Nodes per direction.
    pub fn points(&self) -> [usize; 3] {
        [self.dims[0] + 1, self.dims[1] + 1, self.dims[2] + 1]
    }

    /// Total node count.
    pub fn num_nodes(&self) -> usize {
        let p = self.points();
        p[0] * p[1] * p[2]
    }

    /// Total element count.
    pub fn num_elements(&self) -> usize {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    /// Node id of lattice point `(i, j, k)` — the generator ordering:
    /// `i` fastest, `k` slowest.
    pub fn node_index(&self, i: usize, j: usize, k: usize) -> usize {
        let p = self.points();
        debug_assert!(i < p[0] && j < p[1] && k < p[2]);
        (k * p[1] + j) * p[0] + i
    }

    /// Physical position of lattice point `(i, j, k)`.
    pub fn node_position(&self, i: usize, j: usize, k: usize) -> [f64; 3] {
        let f = |d: usize, idx: usize| {
            self.origin[d] + self.lengths[d] * (idx as f64 / self.dims[d] as f64)
        };
        [f(0, i), f(1, j), f(2, k)]
    }

    /// All node positions in lattice (node-id) order.
    pub fn node_positions(&self) -> Vec<[f64; 3]> {
        let p = self.points();
        let mut out = Vec::with_capacity(self.num_nodes());
        for k in 0..p[2] {
            for j in 0..p[1] {
                for i in 0..p[0] {
                    out.push(self.node_position(i, j, k));
                }
            }
        }
        out
    }

    /// The next-coarser nested lattice (every direction halved), or `None`
    /// when any direction has an odd element count.
    pub fn coarsened(&self) -> Option<BoxLattice> {
        if self.dims.iter().any(|&d| d < 2 || d % 2 != 0) {
            return None;
        }
        Some(BoxLattice { dims: self.dims.map(|d| d / 2), ..*self })
    }

    /// The coarsening chain starting at `self` (finest first): halve while
    /// every direction stays even and the lattice still holds more than
    /// `max_coarse_nodes` nodes.  Always non-empty.
    pub fn coarsening_chain(&self, max_coarse_nodes: usize) -> Vec<BoxLattice> {
        let mut chain = vec![*self];
        while chain.last().unwrap().num_nodes() > max_coarse_nodes {
            match chain.last().unwrap().coarsened() {
                Some(coarse) => chain.push(coarse),
                None => break,
            }
        }
        chain
    }
}

/// Trilinear interpolation rows from a coarse lattice to arbitrary fine
/// points, in CSR layout (`row_ptr` over fine points; columns are coarse
/// node ids, strictly increasing within a row).
///
/// Raw data on purpose: the solver crate owns the operator type.
#[derive(Debug, Clone)]
pub struct TrilinearStencil {
    /// Coarse lattice node count (the column dimension).
    pub coarse_nodes: usize,
    /// Row starts per fine point, plus the terminator.
    pub row_ptr: Vec<usize>,
    /// Coarse node ids.
    pub col_idx: Vec<usize>,
    /// Trilinear weights (each row sums to 1 up to dropped zeros).
    pub weights: Vec<f64>,
}

/// Builds the trilinear stencil of every fine point against `coarse`.
///
/// Each point is located in its (clamped) containing coarse cell; the local
/// coordinates are *not* clamped, so points slightly outside the box — or a
/// jittered node inside a different cell — extrapolate linearly, which
/// preserves exactness on linear functions.  Weights below `1e-12` are
/// dropped: a fine point coinciding with a coarse node keeps the single
/// weight 1.0 (the nested-lattice case).
pub fn trilinear_stencil(coarse: &BoxLattice, fine_points: &[[f64; 3]]) -> TrilinearStencil {
    let mut row_ptr = Vec::with_capacity(fine_points.len() + 1);
    row_ptr.push(0usize);
    let mut col_idx = Vec::new();
    let mut weights = Vec::new();
    for p in fine_points {
        let mut cell = [0usize; 3];
        let mut xi = [0.0f64; 3];
        for d in 0..3 {
            let h = coarse.lengths[d] / coarse.dims[d] as f64;
            let u = (p[d] - coarse.origin[d]) / h;
            let c = (u.floor() as isize).clamp(0, coarse.dims[d] as isize - 1) as usize;
            cell[d] = c;
            xi[d] = u - c as f64;
        }
        // Corner loop ordered k-major so the node ids come out strictly
        // increasing (the generator ordering is i-fastest).
        for dk in 0..2usize {
            for dj in 0..2usize {
                for di in 0..2usize {
                    let w = |frac: f64, side: usize| if side == 1 { frac } else { 1.0 - frac };
                    let weight = w(xi[0], di) * w(xi[1], dj) * w(xi[2], dk);
                    if weight.abs() > 1e-12 {
                        col_idx.push(coarse.node_index(cell[0] + di, cell[1] + dj, cell[2] + dk));
                        weights.push(weight);
                    }
                }
            }
        }
        row_ptr.push(col_idx.len());
    }
    TrilinearStencil { coarse_nodes: coarse.num_nodes(), row_ptr, col_idx, weights }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structured::BoxMeshBuilder;

    #[test]
    fn infer_recovers_the_generating_lattice() {
        let mesh = BoxMeshBuilder::new(8, 8, 8).build();
        let lattice = BoxLattice::infer(&mesh).expect("uniform box");
        assert_eq!(lattice.dims, [8, 8, 8]);
        assert_eq!(lattice.num_nodes(), mesh.num_nodes());
        assert!(lattice.origin.iter().all(|&o| o.abs() < 1e-12));
        assert!(lattice.lengths.iter().all(|&l| (l - 1.0).abs() < 1e-12));
        // Node ordering matches the generator.
        for (node, pos) in lattice.node_positions().iter().enumerate() {
            let p = mesh.node_coords(node);
            assert!((p.x - pos[0]).abs() < 1e-12);
            assert!((p.y - pos[1]).abs() < 1e-12);
            assert!((p.z - pos[2]).abs() < 1e-12);
        }
    }

    #[test]
    fn infer_handles_anisotropic_boxes() {
        let mesh = BoxMeshBuilder::new(12, 6, 4)
            .with_extent(crate::geometry::Point3::new(1.0, -2.0, 0.5), [6.0, 3.0, 2.0])
            .build();
        let lattice = BoxLattice::infer(&mesh).expect("uniform anisotropic box");
        assert_eq!(lattice.dims, [12, 6, 4]);
    }

    #[test]
    fn infer_recovers_the_lattice_of_a_jittered_box() {
        // Jitter only moves interior nodes: the bounding box and the nominal
        // characteristic length are unchanged, so the generating lattice is
        // still recovered.  (The multigrid transfer built from it uses the
        // *true* node coordinates, so jittered nodes interpolate correctly.)
        let mesh = BoxMeshBuilder::new(8, 8, 8).with_jitter(0.3, 7).build();
        let lattice = BoxLattice::infer(&mesh).expect("jittered box still a lattice");
        assert_eq!(lattice.dims, [8, 8, 8]);
    }

    #[test]
    fn infer_rejects_a_mesh_that_is_not_a_uniform_lattice() {
        // A hand-built mesh whose characteristic length does not divide its
        // extent into a whole element count is not a lattice.
        let base = BoxMeshBuilder::new(2, 2, 2).build();
        let coords: Vec<f64> = (0..base.num_nodes())
            .flat_map(|n| {
                let p = base.node_coords(n);
                [p.x, p.y, p.z]
            })
            .collect();
        let lnods = (0..base.num_elements())
            .flat_map(|e| base.element_nodes(e).to_vec())
            .collect::<Vec<_>>();
        let tags = (0..base.num_nodes()).map(|n| base.boundary_tag(n)).collect();
        let mesh = Mesh::from_raw(crate::mesh::ElementKind::Hex8, coords, lnods, tags, 0.4);
        assert!(BoxLattice::infer(&mesh).is_none());
    }

    #[test]
    fn coarsening_chain_halves_while_even() {
        let lattice = BoxLattice::new([0.0; 3], [1.0; 3], [16, 16, 16]);
        let chain = lattice.coarsening_chain(80);
        let dims: Vec<[usize; 3]> = chain.iter().map(|l| l.dims).collect();
        assert_eq!(dims, vec![[16; 3], [8; 3], [4; 3], [2; 3]]);

        let odd = BoxLattice::new([0.0; 3], [1.0; 3], [12, 12, 12]);
        let dims: Vec<[usize; 3]> = odd.coarsening_chain(30).iter().map(|l| l.dims).collect();
        assert_eq!(dims, vec![[12; 3], [6; 3], [3; 3]], "stops at odd dims");
    }

    #[test]
    fn trilinear_rows_partition_unity_and_hit_nested_nodes_exactly() {
        let coarse = BoxLattice::new([0.0; 3], [1.0; 3], [4, 4, 4]);
        let fine = BoxLattice::new([0.0; 3], [1.0; 3], [8, 8, 8]);
        let points = fine.node_positions();
        let stencil = trilinear_stencil(&coarse, &points);
        assert_eq!(stencil.row_ptr.len(), points.len() + 1);
        for f in 0..points.len() {
            let row = stencil.row_ptr[f]..stencil.row_ptr[f + 1];
            let sum: f64 = stencil.weights[row.clone()].iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "partition of unity at {f}");
            let cols = &stencil.col_idx[row.clone()];
            assert!(cols.windows(2).all(|w| w[0] < w[1]), "sorted columns at {f}");
        }
        // Even fine nodes coincide with coarse nodes: one weight, exactly 1.
        let f = fine.node_index(4, 6, 2);
        let row = stencil.row_ptr[f]..stencil.row_ptr[f + 1];
        assert_eq!(row.len(), 1);
        assert_eq!(stencil.weights[row.start], 1.0);
        assert_eq!(stencil.col_idx[row.start], coarse.node_index(2, 3, 1));
    }

    #[test]
    fn trilinear_interpolation_is_exact_on_linear_functions() {
        let coarse = BoxLattice::new([0.5, -1.0, 0.0], [2.0, 4.0, 1.0], [2, 4, 2]);
        let linear = |p: &[f64; 3]| 0.75 * p[0] - 1.5 * p[1] + 2.0 * p[2] + 0.25;
        let coarse_values: Vec<f64> = coarse.node_positions().iter().map(&linear).collect();
        // Probe points including off-lattice and slightly out-of-box ones.
        let probes = [
            [0.5, -1.0, 0.0],
            [1.3, 0.7, 0.45],
            [2.49, 2.99, 0.99],
            [0.45, -1.05, 0.2], // just outside: linear extrapolation
        ];
        let stencil = trilinear_stencil(&coarse, &probes);
        for (row, p) in probes.iter().enumerate() {
            let mut value = 0.0;
            for idx in stencil.row_ptr[row]..stencil.row_ptr[row + 1] {
                value += stencil.weights[idx] * coarse_values[stencil.col_idx[idx]];
            }
            assert!((value - linear(p)).abs() < 1e-12, "probe {row}");
        }
    }
}
