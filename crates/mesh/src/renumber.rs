//! Bandwidth-minimizing node renumbering (reverse Cuthill–McKee) and the
//! locality metrics that motivate it.
//!
//! Phases 1–2 of the mini-app are indexed gathers through the connectivity:
//! for every element of a `VECTOR_SIZE` chunk they touch the coordinate and
//! unknown arrays at the element's node ids.  How far apart those ids lie —
//! the *gather span* of the chunk — decides how many cache lines the gather
//! streams; the same node ordering also fixes the bandwidth of the CSR
//! matrix the solver SpMV traverses.  A mesh generator's node order is
//! rarely good at either, and the paper's post-VEC1 profile is dominated by
//! exactly these two costs.
//!
//! This module provides the standard fix:
//!
//! * [`NodePermutation`] — an old→new node map with its inverse, plus the
//!   helpers to push fields, right-hand sides and solutions through it (and
//!   back);
//! * [`reverse_cuthill_mckee`] — the classic breadth-first bandwidth
//!   minimizer over the node-to-node graph, with fully deterministic
//!   tie-breaking (smallest degree first, then smallest id), so the
//!   permutation is a pure function of the mesh;
//! * [`Mesh::renumber_nodes`] — applies a permutation to the whole mesh
//!   (coordinates, connectivity, boundary tags);
//! * [`LocalityReport`] — the before/after observables: node-graph
//!   bandwidth and per-chunk phase-1/2 gather spans.
//!
//! Renumbering commutes with the assembly bitwise: element order, the
//! element-local node order and therefore every floating-point operation of
//! the sweep are unchanged — only the *destinations* of the scatter move.
//! Assembling the renumbered mesh and inverse-permuting the result
//! reproduces the original system bit for bit (pinned by the integration
//! tests).

use crate::chunks::ElementChunks;
use crate::mesh::Mesh;
use serde::{Deserialize, Serialize};

/// A permutation of the mesh nodes: `forward[old] = new` with its inverse
/// `inverse[new] = old`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodePermutation {
    forward: Vec<usize>,
    inverse: Vec<usize>,
}

impl NodePermutation {
    /// Builds a permutation from its forward map (`forward[old] = new`).
    ///
    /// # Panics
    /// Panics if `forward` is not a permutation of `0..forward.len()`.
    pub fn from_forward(forward: Vec<usize>) -> Self {
        let n = forward.len();
        let mut inverse = vec![usize::MAX; n];
        for (old, &new) in forward.iter().enumerate() {
            assert!(new < n, "forward map sends {old} to {new}, outside 0..{n}");
            assert!(inverse[new] == usize::MAX, "forward map is not injective at {new}");
            inverse[new] = old;
        }
        NodePermutation { forward, inverse }
    }

    /// The identity permutation on `n` nodes.
    pub fn identity(n: usize) -> Self {
        let forward: Vec<usize> = (0..n).collect();
        NodePermutation { inverse: forward.clone(), forward }
    }

    /// Number of nodes permuted.
    #[inline]
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// Whether the permutation is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// Whether this is the identity permutation.
    pub fn is_identity(&self) -> bool {
        self.forward.iter().enumerate().all(|(old, &new)| old == new)
    }

    /// New id of old node `old`.
    #[inline]
    pub fn new_of(&self, old: usize) -> usize {
        self.forward[old]
    }

    /// Old id of new node `new`.
    #[inline]
    pub fn old_of(&self, new: usize) -> usize {
        self.inverse[new]
    }

    /// The forward map (`forward[old] = new`).
    #[inline]
    pub fn forward(&self) -> &[usize] {
        &self.forward
    }

    /// The inverse map (`inverse[new] = old`).
    #[inline]
    pub fn inverse(&self) -> &[usize] {
        &self.inverse
    }

    /// The inverse permutation as a [`NodePermutation`] of its own.
    pub fn inverted(&self) -> NodePermutation {
        NodePermutation { forward: self.inverse.clone(), inverse: self.forward.clone() }
    }

    /// A deterministic pseudo-random permutation of `n` nodes (Fisher–Yates
    /// on a seeded generator).
    ///
    /// The structured generators of this workspace number nodes
    /// lexicographically, which is already bandwidth-optimal for a box — a
    /// luxury real unstructured meshes (the paper's Alya production cases)
    /// do not have.  Scrambling the node order emulates the arbitrary
    /// numbering of an imported mesh; it is the "before" state the
    /// renumbering benches measure [`reverse_cuthill_mckee`] against.
    pub fn scrambled(n: usize, seed: u64) -> Self {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut forward: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..n).rev() {
            let j = rng.gen_range(0..i + 1);
            forward.swap(i, j);
        }
        NodePermutation::from_forward(forward)
    }

    /// Permutes a per-node scalar array: `out[forward[node]] = values[node]`.
    ///
    /// # Panics
    /// Panics if the length does not match the permutation.
    pub fn permute_scalar(&self, values: &[f64]) -> Vec<f64> {
        assert_eq!(values.len(), self.len(), "scalar array length must match the node count");
        let mut out = vec![0.0; values.len()];
        for (old, &v) in values.iter().enumerate() {
            out[self.forward[old]] = v;
        }
        out
    }

    /// Permutes a per-node blocked array (`values[block*node + c]`, e.g. the
    /// `NDIME`-interleaved right-hand side or a [`crate::field::VectorField`]
    /// storage): node blocks move wholesale.
    ///
    /// # Panics
    /// Panics if the length is not `block * len()`.
    pub fn permute_blocked(&self, values: &[f64], block: usize) -> Vec<f64> {
        assert_eq!(
            values.len(),
            block * self.len(),
            "blocked array length must be block * node count"
        );
        let mut out = vec![0.0; values.len()];
        for old in 0..self.len() {
            let new = self.forward[old];
            out[block * new..block * (new + 1)]
                .copy_from_slice(&values[block * old..block * (old + 1)]);
        }
        out
    }
}

/// Reverse Cuthill–McKee ordering of the mesh nodes.
///
/// Classic breadth-first bandwidth minimization over the node-to-node graph:
/// each connected component is traversed from a minimum-degree start node,
/// neighbours are visited in increasing (degree, id) order, and the final
/// ordering is reversed (George's observation that the reverse ordering
/// never has a larger profile).  Every tie-break is deterministic, so the
/// permutation is a pure function of the mesh.
pub fn reverse_cuthill_mckee(mesh: &Mesh) -> NodePermutation {
    let n = mesh.num_nodes();
    let (row_ptr, col_idx) = mesh.node_graph_csr();
    let degree: Vec<usize> = (0..n)
        .map(|node| {
            // The graph stores the diagonal; the degree excludes it.
            let row = &col_idx[row_ptr[node]..row_ptr[node + 1]];
            row.len() - row.iter().filter(|&&c| c == node).count()
        })
        .collect();

    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut neighbours = Vec::new();
    let mut head = 0;
    while order.len() < n {
        // Deterministic component seed: smallest degree, then smallest id.
        let start = (0..n)
            .filter(|&node| !visited[node])
            .min_by_key(|&node| (degree[node], node))
            .expect("an unvisited node must exist");
        visited[start] = true;
        order.push(start);
        while head < order.len() {
            let node = order[head];
            head += 1;
            neighbours.clear();
            for &c in &col_idx[row_ptr[node]..row_ptr[node + 1]] {
                if !visited[c] {
                    visited[c] = true;
                    neighbours.push(c);
                }
            }
            neighbours.sort_by_key(|&c| (degree[c], c));
            order.extend_from_slice(&neighbours);
        }
    }

    // Reverse Cuthill-McKee: the i-th node of the reversed traversal gets
    // new id i.
    let mut forward = vec![0usize; n];
    for (position, &node) in order.iter().rev().enumerate() {
        forward[node] = position;
    }
    NodePermutation::from_forward(forward)
}

impl Mesh {
    /// Returns the mesh with its nodes renumbered by `perm`: coordinates and
    /// boundary tags move to their new slots, connectivity entries are
    /// remapped.  Element order and element-local node order are unchanged,
    /// so the assembly sweep over the renumbered mesh performs exactly the
    /// same floating-point operations — only the scatter destinations move.
    ///
    /// # Panics
    /// Panics if the permutation size does not match the node count.
    pub fn renumber_nodes(&self, perm: &NodePermutation) -> Mesh {
        assert_eq!(perm.len(), self.num_nodes(), "permutation must cover every node");
        let coords = perm.permute_blocked(self.coords(), 3);
        let mut boundary = vec![self.boundary_tag(0); self.num_nodes()];
        for old in 0..self.num_nodes() {
            boundary[perm.new_of(old)] = self.boundary_tag(old);
        }
        let lnods: Vec<u32> =
            self.connectivity().iter().map(|&node| perm.new_of(node as usize) as u32).collect();
        Mesh::from_raw(self.kind(), coords, lnods, boundary, self.characteristic_length())
    }
}

/// Node-graph bandwidth of a mesh: the maximum `|a - b|` over node pairs
/// sharing an element — which is exactly the bandwidth of the CSR matrix
/// assembled on the node-to-node graph.
pub fn node_bandwidth(mesh: &Mesh) -> usize {
    let mut bandwidth = 0usize;
    for e in 0..mesh.num_elements() {
        let nodes = mesh.element_nodes(e);
        for &a in nodes {
            for &b in nodes {
                bandwidth = bandwidth.max((a as usize).abs_diff(b as usize));
            }
        }
    }
    bandwidth
}

/// Gather-locality observables of a mesh under a given `VECTOR_SIZE`
/// blocking, plus the solver-side bandwidth — the quantities the reverse
/// Cuthill–McKee pass exists to shrink.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalityReport {
    /// Node-graph (= CSR) bandwidth.
    pub bandwidth: usize,
    /// Maximum per-chunk gather span (max node id − min node id over the
    /// nodes a chunk's phase-1/2 gathers touch).
    pub max_chunk_span: usize,
    /// Mean per-chunk gather span.
    pub mean_chunk_span: f64,
    /// Chunks measured.
    pub chunks: usize,
}

impl LocalityReport {
    /// Measures the locality of `mesh` under `vector_size`-element chunks
    /// (the same mesh-order blocking phases 1–2 gather through).
    pub fn measure(mesh: &Mesh, vector_size: usize) -> Self {
        let chunks = ElementChunks::new(mesh, vector_size);
        let mut max_span = 0usize;
        let mut sum_span = 0.0f64;
        let mut count = 0usize;
        for chunk in &chunks {
            let mut lo = usize::MAX;
            let mut hi = 0usize;
            for e in chunk.elements() {
                for &node in mesh.element_nodes(e) {
                    lo = lo.min(node as usize);
                    hi = hi.max(node as usize);
                }
            }
            let span = hi - lo;
            max_span = max_span.max(span);
            sum_span += span as f64;
            count += 1;
        }
        LocalityReport {
            bandwidth: node_bandwidth(mesh),
            max_chunk_span: max_span,
            mean_chunk_span: if count > 0 { sum_span / count as f64 } else { 0.0 },
            chunks: count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structured::BoxMeshBuilder;

    #[test]
    fn identity_permutation_roundtrips() {
        let p = NodePermutation::identity(5);
        assert!(p.is_identity());
        assert_eq!(p.len(), 5);
        assert!(!p.is_empty());
        let values = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(p.permute_scalar(&values), values);
    }

    #[test]
    fn from_forward_builds_consistent_inverse() {
        let p = NodePermutation::from_forward(vec![2, 0, 3, 1]);
        for old in 0..4 {
            assert_eq!(p.old_of(p.new_of(old)), old);
        }
        assert!(!p.is_identity());
        let q = p.inverted();
        for old in 0..4 {
            assert_eq!(q.new_of(p.new_of(old)), old);
        }
    }

    #[test]
    #[should_panic(expected = "not injective")]
    fn duplicate_forward_entries_rejected() {
        let _ = NodePermutation::from_forward(vec![0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_forward_entries_rejected() {
        let _ = NodePermutation::from_forward(vec![0, 3]);
    }

    #[test]
    fn permute_scalar_and_blocked_agree() {
        let p = NodePermutation::from_forward(vec![1, 2, 0]);
        let scalar = [10.0, 20.0, 30.0];
        assert_eq!(p.permute_scalar(&scalar), vec![30.0, 10.0, 20.0]);
        let blocked = [10.0, 11.0, 20.0, 21.0, 30.0, 31.0];
        assert_eq!(p.permute_blocked(&blocked, 2), vec![30.0, 31.0, 10.0, 11.0, 20.0, 21.0]);
        // Inverse permutation undoes it.
        let inv = p.inverted();
        assert_eq!(inv.permute_blocked(&p.permute_blocked(&blocked, 2), 2), blocked);
    }

    #[test]
    fn rcm_is_a_valid_permutation_and_deterministic() {
        let mesh = BoxMeshBuilder::new(4, 3, 2).build();
        let p = reverse_cuthill_mckee(&mesh);
        assert_eq!(p.len(), mesh.num_nodes());
        let mut seen = vec![false; p.len()];
        for old in 0..p.len() {
            assert!(!seen[p.new_of(old)]);
            seen[p.new_of(old)] = true;
        }
        // Pure function of the mesh.
        assert_eq!(p, reverse_cuthill_mckee(&mesh));
    }

    #[test]
    fn rcm_shrinks_scrambled_cavity_bandwidth() {
        // The structured generator's lexicographic order is already
        // bandwidth-optimal for a box ((|V|-1)/diameter is attained), so the
        // realistic "before" state is an arbitrary imported numbering —
        // emulated by a deterministic scramble.  RCM must recover at least
        // 2x of the bandwidth the scramble destroyed.
        let mesh = BoxMeshBuilder::new(12, 12, 12).lid_driven_cavity().build();
        let scrambled = mesh.renumber_nodes(&NodePermutation::scrambled(mesh.num_nodes(), 42));
        let before = node_bandwidth(&scrambled);
        let renumbered = scrambled.renumber_nodes(&reverse_cuthill_mckee(&scrambled));
        let after = node_bandwidth(&renumbered);
        assert!(
            (after as f64) * 2.0 <= before as f64,
            "RCM bandwidth {after} not at least 2x below scrambled {before}"
        );
    }

    #[test]
    fn rcm_is_near_optimal_on_the_already_optimal_structured_order() {
        // Sanity bound for the structured box: the generator order attains
        // the (|V|-1)/diameter lower bound, and RCM must stay within a small
        // factor of it (BFS level sets of the L-infinity ball are wider than
        // lexicographic planes — RCM cannot win here, but must not blow up).
        let mesh = BoxMeshBuilder::new(8, 8, 8).build();
        let lower_bound = (mesh.num_nodes() - 1).div_ceil(8);
        assert_eq!(node_bandwidth(&mesh), 9 * 9 + 9 + 1);
        let renumbered = mesh.renumber_nodes(&reverse_cuthill_mckee(&mesh));
        let rcm = node_bandwidth(&renumbered);
        assert!(rcm >= lower_bound);
        assert!(rcm < 8 * lower_bound, "RCM bandwidth {rcm} blew up past {}", 8 * lower_bound);
    }

    #[test]
    fn renumbered_mesh_preserves_geometry_and_tags() {
        let mesh = BoxMeshBuilder::new(4, 4, 4).lid_driven_cavity().with_jitter(0.1, 5).build();
        let p = reverse_cuthill_mckee(&mesh);
        let renumbered = mesh.renumber_nodes(&p);
        assert!(renumbered.validate().is_empty());
        assert!((renumbered.total_volume() - mesh.total_volume()).abs() < 1e-12);
        for old in 0..mesh.num_nodes() {
            let new = p.new_of(old);
            assert_eq!(renumbered.boundary_tag(new), mesh.boundary_tag(old));
            assert!(renumbered.node_coords(new).distance(mesh.node_coords(old)) == 0.0);
        }
        // Per-element volumes are bitwise identical: same element order, same
        // local node order, same coordinates.
        for e in mesh.elements() {
            assert_eq!(mesh.element_volume(e).to_bits(), renumbered.element_volume(e).to_bits());
        }
    }

    #[test]
    fn renumbered_node_graph_is_the_permuted_pattern() {
        let mesh = BoxMeshBuilder::new(3, 3, 3).build();
        let p = reverse_cuthill_mckee(&mesh);
        let renumbered = mesh.renumber_nodes(&p);
        let (row_ptr_o, col_idx_o) = mesh.node_graph_csr();
        let (row_ptr_r, col_idx_r) = renumbered.node_graph_csr();
        for new in 0..renumbered.num_nodes() {
            let old = p.old_of(new);
            let mut expect: Vec<usize> = col_idx_o[row_ptr_o[old]..row_ptr_o[old + 1]]
                .iter()
                .map(|&c| p.new_of(c))
                .collect();
            expect.sort_unstable();
            assert_eq!(&col_idx_r[row_ptr_r[new]..row_ptr_r[new + 1]], expect.as_slice());
        }
    }

    #[test]
    fn locality_report_reflects_the_renumbering() {
        let mesh = BoxMeshBuilder::new(10, 10, 10).build();
        let scrambled = mesh.renumber_nodes(&NodePermutation::scrambled(mesh.num_nodes(), 7));
        let before = LocalityReport::measure(&scrambled, 64);
        let renumbered = scrambled.renumber_nodes(&reverse_cuthill_mckee(&scrambled));
        let after = LocalityReport::measure(&renumbered, 64);
        assert_eq!(before.chunks, after.chunks);
        assert!(before.bandwidth > 2 * after.bandwidth);
        assert!(before.mean_chunk_span > after.mean_chunk_span);
        assert!(after.max_chunk_span > 0);
    }

    #[test]
    fn scrambled_permutation_is_deterministic_and_destroys_locality() {
        let mesh = BoxMeshBuilder::new(8, 8, 8).build();
        let p = NodePermutation::scrambled(mesh.num_nodes(), 3);
        assert_eq!(p, NodePermutation::scrambled(mesh.num_nodes(), 3));
        assert_ne!(p, NodePermutation::scrambled(mesh.num_nodes(), 4));
        assert!(!p.is_identity());
        let scrambled = mesh.renumber_nodes(&p);
        assert!(node_bandwidth(&scrambled) > 3 * node_bandwidth(&mesh));
    }
}
