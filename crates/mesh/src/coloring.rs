//! Element coloring and colored `VECTOR_SIZE` chunking for race-free
//! parallel assembly.
//!
//! The assembly kernel scatters elemental contributions into global nodal
//! arrays (phase 8).  Two elements can be scattered concurrently without
//! atomics if and only if they share no mesh node: all their global matrix
//! rows and RHS entries are then disjoint.  This module provides the
//! two-stage scheduling substrate the multi-threaded sweep uses:
//!
//! 1. [`ElementColoring::greedy`] — a first-fit greedy coloring of the
//!    *elements* (two elements conflict when they share a node).  On a
//!    structured hexahedral mesh this produces the classic 8 colors; on
//!    jittered/unstructured variants a few more.  [`ElementColoring::balanced`]
//!    is the scheduling-aware variant: same conflict rule, but each element
//!    takes the *least-populated* allowed color, which equalizes the
//!    per-color element counts so the trailing chunks of a parallel sweep
//!    stay balanced.  `greedy` is kept as the validity oracle.
//! 2. [`ColoredChunks`] — each color's elements packed into `VECTOR_SIZE`
//!    blocks.  Because any two elements of a color are node-disjoint, **all
//!    chunks of a color are pairwise node-disjoint**, so a parallel sweep can
//!    process every chunk of a color concurrently and only the (few) colors
//!    sequentially.
//!
//! Chunking by color necessarily reorders the elements, which changes the
//! floating-point summation order of the scatter with respect to the serial
//! mesh-order sweep (addition is commutative but not associative).  The
//! colored schedule itself is fully deterministic, however: the result of the
//! colored sweep is bitwise identical for every thread count, and agrees with
//! the mesh-order serial sweep to rounding accuracy.

use crate::chunks::ChunkSlots;
use crate::mesh::Mesh;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Maximum number of colors the greedy pass supports (a `u128` bit mask per
/// node).  A node of a conforming hexahedral mesh touches at most 8 elements
/// and an element conflicts with at most 26 neighbours, so first-fit needs at
/// most 27 colors there — 128 leaves ample headroom for degenerate meshes.
const MAX_COLORS: usize = 128;

/// A partition of the mesh elements into node-disjoint colors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ElementColoring {
    /// Color of each element.
    color_of: Vec<u16>,
    /// Element ids of each color, in mesh order within the color.
    classes: Vec<Vec<usize>>,
}

impl ElementColoring {
    /// First-fit greedy coloring of the elements of `mesh` in mesh order:
    /// each element takes the smallest color not already used by an element
    /// sharing one of its nodes.
    ///
    /// # Panics
    /// Panics if more than 128 colors would be needed (only possible for
    /// meshes with pathological node multiplicity).
    pub fn greedy(mesh: &Mesh) -> Self {
        // used[n] = bit mask of colors already taken by elements touching
        // node n.
        let mut used = vec![0u128; mesh.num_nodes()];
        let mut color_of = Vec::with_capacity(mesh.num_elements());
        let mut classes: Vec<Vec<usize>> = Vec::new();
        for elem in mesh.elements() {
            let nodes = mesh.element_nodes(elem);
            let mut mask = 0u128;
            for &node in nodes {
                mask |= used[node as usize];
            }
            let color = (!mask).trailing_zeros() as usize;
            assert!(color < MAX_COLORS, "element coloring exceeded {MAX_COLORS} colors");
            for &node in nodes {
                used[node as usize] |= 1u128 << color;
            }
            if color == classes.len() {
                classes.push(Vec::new());
            }
            classes[color].push(elem);
            color_of.push(color as u16);
        }
        ElementColoring { color_of, classes }
    }

    /// Balance-aware greedy coloring: like [`greedy`](Self::greedy), each
    /// element in mesh order takes a color no node-sharing neighbour holds —
    /// but among the allowed colors it takes the **least-populated** one
    /// (smallest index on ties), opening a new color only when every
    /// existing one conflicts.
    ///
    /// First-fit packs early colors full and leaves the last colors with a
    /// handful of elements; those short colors become the imbalanced tail
    /// chunks of the parallel sweep (a color with 3 chunks across 4 workers
    /// leaves one idle).  Balancing the class sizes removes that tail
    /// without changing the validity invariant, which is the same as
    /// `greedy`'s and checked by the same [`validate`](Self::validate).
    ///
    /// The choice rule is deterministic, so the coloring — and every
    /// schedule built on it — is a pure function of the mesh.
    ///
    /// # Panics
    /// Panics if more than 128 colors would be needed.
    pub fn balanced(mesh: &Mesh) -> Self {
        let mut used = vec![0u128; mesh.num_nodes()];
        let mut color_of = Vec::with_capacity(mesh.num_elements());
        let mut classes: Vec<Vec<usize>> = Vec::new();
        for elem in mesh.elements() {
            let nodes = mesh.element_nodes(elem);
            let mut mask = 0u128;
            for &node in nodes {
                mask |= used[node as usize];
            }
            let mut best: Option<usize> = None;
            for color in 0..classes.len() {
                // `map_or`, not `is_none_or`: the workspace MSRV is 1.75.
                if mask & (1u128 << color) == 0
                    && best.map_or(true, |b| classes[color].len() < classes[b].len())
                {
                    best = Some(color);
                }
            }
            let color = best.unwrap_or_else(|| {
                assert!(
                    classes.len() < MAX_COLORS,
                    "element coloring exceeded {MAX_COLORS} colors"
                );
                classes.push(Vec::new());
                classes.len() - 1
            });
            for &node in nodes {
                used[node as usize] |= 1u128 << color;
            }
            classes[color].push(elem);
            color_of.push(color as u16);
        }
        ElementColoring { color_of, classes }
    }

    /// Number of colors used.
    #[inline]
    pub fn num_colors(&self) -> usize {
        self.classes.len()
    }

    /// Spread of the per-color element counts: `max - min` over the color
    /// classes (0 for a perfectly balanced coloring or an empty mesh).
    pub fn class_spread(&self) -> usize {
        let max = self.classes.iter().map(Vec::len).max().unwrap_or(0);
        let min = self.classes.iter().map(Vec::len).min().unwrap_or(0);
        max - min
    }

    /// Number of elements colored.
    #[inline]
    pub fn num_elements(&self) -> usize {
        self.color_of.len()
    }

    /// Color of element `elem`.
    #[inline]
    pub fn color_of(&self, elem: usize) -> usize {
        self.color_of[elem] as usize
    }

    /// The element ids of each color, in mesh order within a color.
    #[inline]
    pub fn classes(&self) -> &[Vec<usize>] {
        &self.classes
    }

    /// Checks the coloring invariants against `mesh`, returning a list of
    /// human-readable problems (empty when valid): every element has exactly
    /// one color, and no two elements of a color share a node.
    pub fn validate(&self, mesh: &Mesh) -> Vec<String> {
        let mut problems = Vec::new();
        if self.color_of.len() != mesh.num_elements() {
            problems.push(format!(
                "coloring covers {} elements but the mesh has {}",
                self.color_of.len(),
                mesh.num_elements()
            ));
            return problems;
        }
        let total: usize = self.classes.iter().map(Vec::len).sum();
        if total != mesh.num_elements() {
            problems
                .push(format!("classes hold {total} elements, expected {}", mesh.num_elements()));
        }
        for (color, class) in self.classes.iter().enumerate() {
            let mut owner: Vec<Option<usize>> = vec![None; mesh.num_nodes()];
            for &elem in class {
                if self.color_of(elem) != color {
                    problems.push(format!(
                        "element {elem} listed under color {color} but tagged {}",
                        self.color_of(elem)
                    ));
                }
                for &node in mesh.element_nodes(elem) {
                    match owner[node as usize] {
                        Some(other) if other != elem => problems.push(format!(
                            "elements {other} and {elem} of color {color} share node {node}"
                        )),
                        _ => owner[node as usize] = Some(elem),
                    }
                }
            }
        }
        problems
    }
}

/// The elements of a colored mesh packed into `VECTOR_SIZE` blocks, color by
/// color.  All chunks of one color are pairwise node-disjoint (see the
/// module docs), which is the invariant the lock-free parallel scatter
/// relies on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColoredChunks {
    vector_size: usize,
    /// Element ids of every chunk, chunk-major (chunk `c` owns
    /// `elements[chunk_bounds[c].0 ..][.. chunk_bounds[c].1]`).
    elements: Vec<usize>,
    /// Per chunk: (offset into `elements`, number of valid elements).
    chunk_bounds: Vec<(usize, usize)>,
    /// Per color: the range of chunk ids belonging to it.
    color_ranges: Vec<Range<usize>>,
}

impl ColoredChunks {
    /// Packs each color class of `coloring` into blocks of `vector_size`
    /// elements (the last block of each color may be partially filled).
    ///
    /// # Panics
    /// Panics if `vector_size == 0`.
    pub fn new(coloring: &ElementColoring, vector_size: usize) -> Self {
        assert!(vector_size > 0, "VECTOR_SIZE must be positive");
        let mut elements = Vec::with_capacity(coloring.num_elements());
        let mut chunk_bounds = Vec::new();
        let mut color_ranges = Vec::with_capacity(coloring.num_colors());
        for class in coloring.classes() {
            let first_chunk = chunk_bounds.len();
            for block in class.chunks(vector_size) {
                chunk_bounds.push((elements.len(), block.len()));
                elements.extend_from_slice(block);
            }
            color_ranges.push(first_chunk..chunk_bounds.len());
        }
        ColoredChunks { vector_size, elements, chunk_bounds, color_ranges }
    }

    /// The configured `VECTOR_SIZE`.
    #[inline]
    pub fn vector_size(&self) -> usize {
        self.vector_size
    }

    /// Total number of chunks across all colors.
    #[inline]
    pub fn num_chunks(&self) -> usize {
        self.chunk_bounds.len()
    }

    /// Number of colors.
    #[inline]
    pub fn num_colors(&self) -> usize {
        self.color_ranges.len()
    }

    /// Total number of (valid) elements covered.
    #[inline]
    pub fn num_elements(&self) -> usize {
        self.elements.len()
    }

    /// The chunk ids belonging to `color`.
    #[inline]
    pub fn color_chunks(&self, color: usize) -> Range<usize> {
        self.color_ranges[color].clone()
    }

    /// The slot map of chunk `chunk_id` (valid element ids plus the padded
    /// width), directly consumable by the slice-view kernel phases.
    #[inline]
    pub fn slots(&self, chunk_id: usize) -> ChunkSlots<'_> {
        let (start, len) = self.chunk_bounds[chunk_id];
        ChunkSlots { elements: &self.elements[start..start + len], vector_size: self.vector_size }
    }

    /// Checks the chunking invariants against `mesh`, returning a list of
    /// human-readable problems (empty when valid): the chunks partition the
    /// elements, and no two chunks of one color share a node.
    pub fn validate(&self, mesh: &Mesh) -> Vec<String> {
        let mut problems = Vec::new();
        let mut seen = vec![false; mesh.num_elements()];
        for &elem in &self.elements {
            if elem >= mesh.num_elements() {
                problems.push(format!("chunk references element {elem} outside the mesh"));
                continue;
            }
            if seen[elem] {
                problems.push(format!("element {elem} appears in more than one chunk"));
            }
            seen[elem] = true;
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            problems.push(format!("element {missing} is not covered by any chunk"));
        }
        for color in 0..self.num_colors() {
            let mut owner: Vec<Option<usize>> = vec![None; mesh.num_nodes()];
            for chunk_id in self.color_chunks(color) {
                if self.slots(chunk_id).len() > self.vector_size {
                    problems.push(format!("chunk {chunk_id} exceeds VECTOR_SIZE"));
                }
                for &elem in self.slots(chunk_id).elements {
                    for &node in mesh.element_nodes(elem) {
                        match owner[node as usize] {
                            Some(other) if other != chunk_id => problems.push(format!(
                                "chunks {other} and {chunk_id} of color {color} share node {node}"
                            )),
                            _ => owner[node as usize] = Some(chunk_id),
                        }
                    }
                }
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structured::BoxMeshBuilder;

    #[test]
    fn structured_hex_mesh_takes_eight_colors() {
        let mesh = BoxMeshBuilder::new(4, 4, 4).build();
        let coloring = ElementColoring::greedy(&mesh);
        assert_eq!(coloring.num_colors(), 8);
        assert_eq!(coloring.num_elements(), 64);
        assert!(coloring.validate(&mesh).is_empty());
    }

    #[test]
    fn jittered_cavity_coloring_is_valid() {
        let mesh = BoxMeshBuilder::new(6, 5, 4).lid_driven_cavity().with_jitter(0.1, 3).build();
        let coloring = ElementColoring::greedy(&mesh);
        let problems = coloring.validate(&mesh);
        assert!(problems.is_empty(), "{problems:?}");
        // Jitter moves nodes but keeps the connectivity, so the color count
        // stays the structured 8.
        assert_eq!(coloring.num_colors(), 8);
    }

    #[test]
    fn neighbouring_elements_get_distinct_colors() {
        let mesh = BoxMeshBuilder::new(4, 1, 1).build();
        let coloring = ElementColoring::greedy(&mesh);
        for e in 0..3 {
            assert_ne!(coloring.color_of(e), coloring.color_of(e + 1));
        }
        // A 1-D strip of hexes 2-colors like a path graph.
        assert_eq!(coloring.num_colors(), 2);
    }

    #[test]
    fn balanced_coloring_is_valid_and_no_wider_than_greedy_spread() {
        // Non-cubic boxes give first-fit uneven octant classes; the balanced
        // variant must stay valid (greedy's validate is the shared oracle)
        // and must not be *less* balanced.
        for (nx, ny, nz) in [(4, 4, 4), (5, 3, 2), (7, 4, 3), (3, 3, 5)] {
            let mesh = BoxMeshBuilder::new(nx, ny, nz).lid_driven_cavity().build();
            let greedy = ElementColoring::greedy(&mesh);
            let balanced = ElementColoring::balanced(&mesh);
            let problems = balanced.validate(&mesh);
            assert!(problems.is_empty(), "{nx}x{ny}x{nz}: {problems:?}");
            assert_eq!(balanced.num_elements(), mesh.num_elements());
            assert!(
                balanced.class_spread() <= greedy.class_spread(),
                "{nx}x{ny}x{nz}: balanced spread {} > greedy spread {}",
                balanced.class_spread(),
                greedy.class_spread()
            );
        }
    }

    #[test]
    fn balanced_coloring_tightens_an_actually_imbalanced_case() {
        // 5x3x2 = 30 elements, 8 octant-parity classes: first-fit yields
        // classes of size ceil/floor products (spread 4).  The conflict
        // structure caps how much balancing is possible — interior elements
        // have a single allowed color — but the boundary freedom must be
        // spent on the short classes (strictly smaller spread).
        let mesh = BoxMeshBuilder::new(5, 3, 2).build();
        let greedy = ElementColoring::greedy(&mesh);
        let balanced = ElementColoring::balanced(&mesh);
        assert!(greedy.class_spread() > 3, "greedy spread {}", greedy.class_spread());
        assert!(
            balanced.class_spread() < greedy.class_spread(),
            "balanced spread {} should beat greedy spread {}",
            balanced.class_spread(),
            greedy.class_spread()
        );
    }

    #[test]
    fn balanced_coloring_of_structured_hex_keeps_eight_colors() {
        let mesh = BoxMeshBuilder::new(4, 4, 4).build();
        let balanced = ElementColoring::balanced(&mesh);
        assert_eq!(balanced.num_colors(), 8);
        assert_eq!(balanced.class_spread(), 0); // 64 elements, 8 x 8
        assert!(balanced.validate(&mesh).is_empty());
    }

    #[test]
    fn balanced_chunks_uphold_the_disjointness_invariant() {
        let mesh = BoxMeshBuilder::new(6, 5, 4).lid_driven_cavity().with_jitter(0.1, 3).build();
        let balanced = ElementColoring::balanced(&mesh);
        for vs in [1usize, 8, 32] {
            let chunks = ColoredChunks::new(&balanced, vs);
            let problems = chunks.validate(&mesh);
            assert!(problems.is_empty(), "vs={vs}: {problems:?}");
            assert_eq!(chunks.num_elements(), mesh.num_elements());
        }
    }

    #[test]
    fn colored_chunks_partition_and_stay_disjoint() {
        let mesh = BoxMeshBuilder::new(6, 6, 6).lid_driven_cavity().build();
        let coloring = ElementColoring::greedy(&mesh);
        for vs in [1usize, 8, 32, 64] {
            let chunks = ColoredChunks::new(&coloring, vs);
            assert_eq!(chunks.num_elements(), mesh.num_elements());
            assert_eq!(chunks.num_colors(), coloring.num_colors());
            let problems = chunks.validate(&mesh);
            assert!(problems.is_empty(), "vs={vs}: {problems:?}");
        }
    }

    #[test]
    fn chunk_count_is_per_color_ceiling() {
        let mesh = BoxMeshBuilder::new(4, 4, 4).build(); // 8 colors x 8 elements
        let coloring = ElementColoring::greedy(&mesh);
        let chunks = ColoredChunks::new(&coloring, 3); // ceil(8/3) = 3 per color
        assert_eq!(chunks.num_chunks(), 24);
        for color in 0..8 {
            assert_eq!(chunks.color_chunks(color).len(), 3);
        }
        // Last chunk of each color is the 8 mod 3 = 2-element remainder.
        let last = chunks.color_chunks(0).end - 1;
        assert_eq!(chunks.slots(last).len(), 2);
        assert_eq!(chunks.slots(last).vector_size, 3);
    }

    #[test]
    fn slots_expose_padding() {
        let mesh = BoxMeshBuilder::new(3, 3, 3).build(); // 27 elements
        let coloring = ElementColoring::greedy(&mesh);
        let chunks = ColoredChunks::new(&coloring, 32);
        for chunk_id in 0..chunks.num_chunks() {
            let slots = chunks.slots(chunk_id);
            assert!(!slots.is_empty() && slots.len() <= 32);
            assert!(slots.element(slots.len() - 1).is_some());
            assert_eq!(slots.element(slots.len()), None);
            assert_eq!(slots.padding(), 32 - slots.len());
        }
    }

    #[test]
    #[should_panic]
    fn zero_vector_size_rejected() {
        let mesh = BoxMeshBuilder::new(2, 2, 2).build();
        let coloring = ElementColoring::greedy(&mesh);
        let _ = ColoredChunks::new(&coloring, 0);
    }
}
