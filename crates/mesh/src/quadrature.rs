//! Gauss quadrature rules for hexahedral and tetrahedral elements.
//!
//! The Nastin assembly loops over integration points (`igaus` loops in the
//! paper's phase descriptions), so the quadrature rule fixes the trip count of
//! several of the nested loops the auto-vectorizer sees.

use crate::mesh::ElementKind;
use serde::{Deserialize, Serialize};

/// One integration point: reference-space position and weight.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuadraturePoint {
    /// Reference coordinates (ξ, η, ζ).
    pub xi: [f64; 3],
    /// Quadrature weight.
    pub weight: f64,
}

/// A quadrature rule: a list of points and weights on the reference element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussRule {
    kind: ElementKind,
    points: Vec<QuadraturePoint>,
}

impl GaussRule {
    /// Returns the default rule for an element kind: 2×2×2 Gauss–Legendre for
    /// hexahedra, the symmetric 4-point rule for tetrahedra.
    pub fn for_kind(kind: ElementKind) -> Self {
        match kind {
            ElementKind::Hex8 => Self::hex_2x2x2(),
            ElementKind::Tet4 => Self::tet_4pt(),
        }
    }

    /// 2×2×2 Gauss–Legendre rule on the reference cube [-1, 1]³ (8 points,
    /// total weight 8 = reference volume).  Exact for trilinear integrands.
    pub fn hex_2x2x2() -> Self {
        let g = 1.0 / 3.0_f64.sqrt();
        let mut points = Vec::with_capacity(8);
        for &zk in &[-g, g] {
            for &yj in &[-g, g] {
                for &xi in &[-g, g] {
                    points.push(QuadraturePoint { xi: [xi, yj, zk], weight: 1.0 });
                }
            }
        }
        GaussRule { kind: ElementKind::Hex8, points }
    }

    /// 3×3×3 Gauss–Legendre rule on the reference cube (27 points).  Provided
    /// so the kernel crate can study higher `pgaus` counts (larger inner trip
    /// counts for the auto-vectorizer).
    pub fn hex_3x3x3() -> Self {
        let a = (3.0_f64 / 5.0).sqrt();
        let pts_1d = [-a, 0.0, a];
        let w_1d = [5.0 / 9.0, 8.0 / 9.0, 5.0 / 9.0];
        let mut points = Vec::with_capacity(27);
        for k in 0..3 {
            for j in 0..3 {
                for i in 0..3 {
                    points.push(QuadraturePoint {
                        xi: [pts_1d[i], pts_1d[j], pts_1d[k]],
                        weight: w_1d[i] * w_1d[j] * w_1d[k],
                    });
                }
            }
        }
        GaussRule { kind: ElementKind::Hex8, points }
    }

    /// Symmetric 4-point rule on the reference tetrahedron (exact for
    /// quadratic integrands).  Total weight 1/6 = reference volume.
    pub fn tet_4pt() -> Self {
        let a = (5.0 + 3.0 * 5.0_f64.sqrt()) / 20.0;
        let b = (5.0 - 5.0_f64.sqrt()) / 20.0;
        let w = 1.0 / 24.0;
        let points = vec![
            QuadraturePoint { xi: [a, b, b], weight: w },
            QuadraturePoint { xi: [b, a, b], weight: w },
            QuadraturePoint { xi: [b, b, a], weight: w },
            QuadraturePoint { xi: [b, b, b], weight: w },
        ];
        GaussRule { kind: ElementKind::Tet4, points }
    }

    /// Element kind this rule integrates over.
    #[inline]
    pub fn kind(&self) -> ElementKind {
        self.kind
    }

    /// Number of integration points (`pgaus`).
    #[inline]
    pub fn num_points(&self) -> usize {
        self.points.len()
    }

    /// All integration points.
    #[inline]
    pub fn points(&self) -> &[QuadraturePoint] {
        &self.points
    }

    /// Sum of the weights, i.e. the measure of the reference element.
    pub fn total_weight(&self) -> f64 {
        self.points.iter().map(|p| p.weight).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_rule_weights_sum_to_reference_volume() {
        assert!((GaussRule::hex_2x2x2().total_weight() - 8.0).abs() < 1e-12);
        assert!((GaussRule::hex_3x3x3().total_weight() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn tet_rule_weights_sum_to_reference_volume() {
        assert!((GaussRule::tet_4pt().total_weight() - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn default_rules_match_kind() {
        assert_eq!(GaussRule::for_kind(ElementKind::Hex8).num_points(), 8);
        assert_eq!(GaussRule::for_kind(ElementKind::Tet4).num_points(), 4);
        assert_eq!(GaussRule::for_kind(ElementKind::Hex8).kind(), ElementKind::Hex8);
    }

    #[test]
    fn hex_2x2x2_integrates_linear_functions_exactly() {
        // ∫ (1 + x + y + z) over [-1,1]^3 = 8.
        let rule = GaussRule::hex_2x2x2();
        let val: f64 =
            rule.points().iter().map(|p| p.weight * (1.0 + p.xi[0] + p.xi[1] + p.xi[2])).sum();
        assert!((val - 8.0).abs() < 1e-12);
    }

    #[test]
    fn hex_2x2x2_integrates_quadratics_exactly() {
        // ∫ x^2 over [-1,1]^3 = 8/3.
        let rule = GaussRule::hex_2x2x2();
        let val: f64 = rule.points().iter().map(|p| p.weight * p.xi[0] * p.xi[0]).sum();
        assert!((val - 8.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn tet_rule_integrates_linear_functions_exactly() {
        // ∫ x over reference tet = 1/24.
        let rule = GaussRule::tet_4pt();
        let val: f64 = rule.points().iter().map(|p| p.weight * p.xi[0]).sum();
        assert!((val - 1.0 / 24.0).abs() < 1e-12);
    }

    #[test]
    fn hex_points_are_inside_reference_cube() {
        for rule in [GaussRule::hex_2x2x2(), GaussRule::hex_3x3x3()] {
            for p in rule.points() {
                for d in 0..3 {
                    assert!(p.xi[d].abs() < 1.0, "gauss point outside reference cube");
                }
            }
        }
    }
}
