//! Wall-clock measurement of full fractional steps — the engine behind the
//! `wallclock_driver` bench and the committed `BENCH_driver.json` artifact.
//!
//! Each case runs a fresh [`Stepper`] for a fixed number of steps on a team
//! of the requested size, recording the per-phase breakdown (assembly /
//! momentum / Poisson / correction) of the fastest repetition.  Before any
//! timing is trusted, every multi-threaded trajectory is validated **bitwise**
//! against the single-threaded oracle — the driver's determinism contract —
//! and the measurement panics on the first deviating bit.

use crate::scenario::Scenario;
use crate::stepper::{SimState, StepTimings, Stepper, StepperConfig};
use lv_runtime::Team;

/// Timing of one `(threads,)` driver case.
#[derive(Debug, Clone)]
pub struct DriverMeasurement {
    /// Worker threads of the shared team.
    pub threads: usize,
    /// Total wall-clock seconds of the fastest repetition (all steps).
    pub seconds: f64,
    /// Per-phase breakdown of that repetition.
    pub timings: StepTimings,
    /// Speed-up over the single-threaded case.
    pub speedup: f64,
    /// Whether the final state matched the 1-thread oracle bit for bit.
    pub bitwise_equal: bool,
}

/// A full driver wall-clock comparison on one scenario.
#[derive(Debug, Clone)]
pub struct DriverBenchReport {
    /// Scenario registry name.
    pub scenario: String,
    /// Mesh elements.
    pub elements: usize,
    /// Mesh nodes (= solver rows per component).
    pub rows: usize,
    /// Steps per repetition.
    pub steps: usize,
    /// Repetitions per case.
    pub repetitions: usize,
    /// Per-thread-count measurements, 1-thread oracle first.
    pub cases: Vec<DriverMeasurement>,
}

fn assert_states_bitwise(oracle: &SimState, got: &SimState, threads: usize) {
    assert_eq!(oracle.step, got.step, "step count diverged at {threads} threads");
    assert_eq!(
        oracle.time.to_bits(),
        got.time.to_bits(),
        "simulation time diverged at {threads} threads"
    );
    for (a, b) in oracle.velocity.as_slice().iter().zip(got.velocity.as_slice()) {
        assert_eq!(a.to_bits(), b.to_bits(), "velocity diverged at {threads} threads");
    }
    for (a, b) in oracle.pressure.as_slice().iter().zip(got.pressure.as_slice()) {
        assert_eq!(a.to_bits(), b.to_bits(), "pressure diverged at {threads} threads");
    }
}

impl DriverBenchReport {
    /// Times `steps` fractional steps of `scenario` at every entry of
    /// `thread_counts` (the 1-thread case is always measured first as the
    /// oracle), `repetitions` fresh runs per case, keeping the fastest.
    ///
    /// # Panics
    /// Panics if a step fails to converge or a multi-threaded trajectory
    /// deviates from the single-threaded oracle in any bit.
    pub fn measure(
        scenario: &Scenario,
        config: StepperConfig,
        steps: usize,
        thread_counts: &[usize],
        repetitions: usize,
    ) -> Self {
        assert!(steps > 0 && repetitions > 0);
        let mesh = scenario.build_mesh();
        let mut cases = Vec::new();
        let mut oracle: Option<SimState> = None;
        let mut serial_seconds = f64::NAN;
        let mut counts: Vec<usize> = vec![1];
        counts.extend(thread_counts.iter().copied().filter(|&t| t > 1));
        for threads in counts {
            let team = Team::new(threads);
            let mut best_total = f64::INFINITY;
            let mut best_timings = StepTimings::default();
            let mut final_state: Option<SimState> = None;
            for _ in 0..repetitions {
                let mut stepper = Stepper::with_mesh(scenario.clone(), config, mesh.clone());
                let mut timings = StepTimings::default();
                for report in stepper.run_on(&team, steps).expect("driver step must converge") {
                    timings.accumulate(&report.timings);
                }
                if timings.total() < best_total {
                    best_total = timings.total();
                    best_timings = timings;
                }
                final_state = Some(stepper.state().clone());
            }
            let final_state = final_state.expect("at least one repetition ran");
            let bitwise_equal = match &oracle {
                None => {
                    serial_seconds = best_total;
                    oracle = Some(final_state);
                    true
                }
                Some(oracle) => {
                    assert_states_bitwise(oracle, &final_state, threads);
                    true
                }
            };
            cases.push(DriverMeasurement {
                threads,
                seconds: best_total,
                timings: best_timings,
                speedup: serial_seconds / best_total,
                bitwise_equal,
            });
        }
        DriverBenchReport {
            scenario: scenario.kind.name().to_string(),
            elements: mesh.num_elements(),
            rows: mesh.num_nodes(),
            steps,
            repetitions,
            cases,
        }
    }

    /// Hand-rolled JSON object (the offline `serde_json` shim cannot
    /// serialize).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"scenario\": \"{}\", \"elements\": {}, \"rows\": {}, \"steps\": {}, \
             \"repetitions\": {}, \"cases\": [",
            self.scenario, self.elements, self.rows, self.steps, self.repetitions
        ));
        for (i, c) in self.cases.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"threads\": {}, \"seconds\": {:.9}, \"assembly_seconds\": {:.9}, \
                 \"momentum_seconds\": {:.9}, \"poisson_seconds\": {:.9}, \
                 \"correction_seconds\": {:.9}, \"speedup\": {:.4}, \"bitwise_equal\": {}}}",
                c.threads,
                c.seconds,
                c.timings.assembly,
                c.timings.momentum,
                c.timings.poisson,
                c.timings.correction,
                c.speedup,
                c.bitwise_equal
            ));
        }
        out.push_str("]}");
        out
    }

    /// Aligned human-readable table.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "{}: {} elements / {} rows, {} step(s), min of {} rep(s)\n",
            self.scenario, self.elements, self.rows, self.steps, self.repetitions
        );
        for c in &self.cases {
            out.push_str(&format!(
                "  {:>2}t {:>9.3} ms  {:>5.2}x  (assembly {:.1}% | momentum {:.1}% | \
                 poisson {:.1}% | correction {:.1}%)  bitwise == 1t\n",
                c.threads,
                c.seconds * 1e3,
                c.speedup,
                100.0 * c.timings.assembly / c.seconds,
                100.0 * c.timings.momentum / c.seconds,
                100.0 * c.timings.poisson / c.seconds,
                100.0 * c.timings.correction / c.seconds,
            ));
        }
        out
    }
}

/// Serializes driver reports as the `BENCH_driver.json` document.
pub fn driver_bench_to_json(host_threads: usize, reports: &[DriverBenchReport]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"bench\": \"wallclock_driver\",\n  \"host_threads\": {host_threads},\n"
    ));
    out.push_str("  \"runs\": [\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&r.to_json());
        out.push_str(if i + 1 < reports.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioKind;
    use lv_kernel::MomentumPath;

    #[test]
    fn driver_bench_measures_validates_and_renders() {
        let scenario = Scenario::new(ScenarioKind::LidDrivenCavity, 4);
        let config =
            StepperConfig::default().with_vector_size(32).with_momentum_path(MomentumPath::Batched);
        let report = DriverBenchReport::measure(&scenario, config, 1, &[2], 1);
        assert_eq!(report.cases.len(), 2);
        assert_eq!(report.cases[0].threads, 1);
        assert_eq!(report.cases[1].threads, 2);
        for c in &report.cases {
            assert!(c.seconds > 0.0 && c.seconds.is_finite());
            assert!(c.timings.total() > 0.0);
            assert!(c.bitwise_equal);
        }
        let json = report.to_json();
        assert!(json.contains("\"scenario\": \"cavity\""));
        assert!(json.contains("\"poisson_seconds\""));
        let doc = driver_bench_to_json(4, std::slice::from_ref(&report));
        assert!(doc.contains("\"bench\": \"wallclock_driver\""));
        assert!(doc.contains("\"host_threads\": 4"));
        assert!(report.to_text().contains("bitwise == 1t"));
    }
}
