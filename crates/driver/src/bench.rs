//! Wall-clock measurement of full fractional steps — the engine behind the
//! `wallclock_driver` bench and the committed `BENCH_driver.json` artifact.
//!
//! Each case runs a fresh [`Stepper`] for a fixed number of steps on a
//! **traced** team of the requested size; the per-phase breakdown (assembly
//! / momentum / Poisson / correction / other) of the fastest repetition is
//! read off the [`RunSummary`] of the `lv-trace` span log — the bench no
//! longer keeps its own ad-hoc stopwatches.  Before any timing is trusted,
//! every multi-threaded trajectory is validated **bitwise** against the
//! single-threaded oracle — the driver's determinism contract — and the
//! measurement panics on the first deviating bit.

use crate::scenario::Scenario;
use crate::stepper::{SimState, StepTimings, Stepper, StepperConfig};
use lv_kernel::{build_pressure_multigrid, pressure_laplacian, MatrixFreeLaplacian};
use lv_runtime::Team;
use lv_solver::{
    conjugate_gradient, mg_preconditioned_cg, LinearOperator, MultigridOptions, SolveOptions,
};
use lv_trace::json::{JsonArray, JsonObject};
use lv_trace::summary::RunSummary;
use lv_trace::TraceConfig;

/// Timing of one `(threads,)` driver case.
#[derive(Debug, Clone)]
pub struct DriverMeasurement {
    /// Worker threads of the shared team.
    pub threads: usize,
    /// Total wall-clock seconds of the fastest repetition (all steps).
    pub seconds: f64,
    /// Per-phase breakdown of that repetition.
    pub timings: StepTimings,
    /// Speed-up over the single-threaded case.
    pub speedup: f64,
    /// Whether the final state matched the 1-thread oracle bit for bit.
    pub bitwise_equal: bool,
}

/// A full driver wall-clock comparison on one scenario.
#[derive(Debug, Clone)]
pub struct DriverBenchReport {
    /// Scenario registry name.
    pub scenario: String,
    /// Mesh elements.
    pub elements: usize,
    /// Mesh nodes (= solver rows per component).
    pub rows: usize,
    /// Steps per repetition.
    pub steps: usize,
    /// Repetitions per case.
    pub repetitions: usize,
    /// Per-thread-count measurements, 1-thread oracle first.
    pub cases: Vec<DriverMeasurement>,
}

fn assert_states_bitwise(oracle: &SimState, got: &SimState, threads: usize) {
    assert_eq!(oracle.step, got.step, "step count diverged at {threads} threads");
    assert_eq!(
        oracle.time.to_bits(),
        got.time.to_bits(),
        "simulation time diverged at {threads} threads"
    );
    for (a, b) in oracle.velocity.as_slice().iter().zip(got.velocity.as_slice()) {
        assert_eq!(a.to_bits(), b.to_bits(), "velocity diverged at {threads} threads");
    }
    for (a, b) in oracle.pressure.as_slice().iter().zip(got.pressure.as_slice()) {
        assert_eq!(a.to_bits(), b.to_bits(), "pressure diverged at {threads} threads");
    }
}

impl DriverBenchReport {
    /// Times `steps` fractional steps of `scenario` at every entry of
    /// `thread_counts` (the 1-thread case is always measured first as the
    /// oracle), `repetitions` fresh runs per case, keeping the fastest.
    ///
    /// # Panics
    /// Panics if a step fails to converge or a multi-threaded trajectory
    /// deviates from the single-threaded oracle in any bit.
    pub fn measure(
        scenario: &Scenario,
        config: StepperConfig,
        steps: usize,
        thread_counts: &[usize],
        repetitions: usize,
    ) -> Self {
        assert!(steps > 0 && repetitions > 0);
        let mesh = scenario.build_mesh();
        let mut cases = Vec::new();
        let mut oracle: Option<SimState> = None;
        let mut serial_seconds = f64::NAN;
        let mut counts: Vec<usize> = vec![1];
        counts.extend(thread_counts.iter().copied().filter(|&t| t > 1));
        for threads in counts {
            let mut team = Team::with_trace(threads, TraceConfig::default());
            let mut best_total = f64::INFINITY;
            let mut best_timings = StepTimings::default();
            let mut final_state: Option<SimState> = None;
            for _ in 0..repetitions {
                let mut stepper =
                    Stepper::with_mesh(scenario.clone(), config.clone(), mesh.clone());
                stepper.run_on(&team, steps).expect("driver step must converge");
                // One repetition's phase breakdown, read off the span log.
                let trace = team.trace_mut().expect("the bench team is traced");
                let summary = RunSummary::from_trace(trace);
                trace.clear_events();
                let total = summary.phase_seconds("driver/step");
                let mut timings = StepTimings {
                    assembly: summary.phase_seconds("driver/assembly"),
                    momentum: summary.phase_seconds("driver/momentum"),
                    poisson: summary.phase_seconds("driver/poisson"),
                    correction: summary.phase_seconds("driver/correction"),
                    other: 0.0,
                };
                timings.other = (total - timings.total()).max(0.0);
                if total < best_total {
                    best_total = total;
                    best_timings = timings;
                }
                final_state = Some(stepper.state().clone());
            }
            let final_state = final_state.expect("at least one repetition ran");
            let bitwise_equal = match &oracle {
                None => {
                    serial_seconds = best_total;
                    oracle = Some(final_state);
                    true
                }
                Some(oracle) => {
                    assert_states_bitwise(oracle, &final_state, threads);
                    true
                }
            };
            cases.push(DriverMeasurement {
                threads,
                seconds: best_total,
                timings: best_timings,
                speedup: serial_seconds / best_total,
                bitwise_equal,
            });
        }
        DriverBenchReport {
            scenario: scenario.kind.name().to_string(),
            elements: mesh.num_elements(),
            rows: mesh.num_nodes(),
            steps,
            repetitions,
            cases,
        }
    }

    /// JSON object via the shared [`lv_trace::json`] emitter (the offline
    /// `serde_json` shim cannot serialize).
    pub fn to_json(&self) -> String {
        let mut cases = JsonArray::new();
        for c in &self.cases {
            cases.push_object(
                JsonObject::new()
                    .usize("threads", c.threads)
                    .f64_fixed("seconds", c.seconds, 9)
                    .f64_fixed("assembly_seconds", c.timings.assembly, 9)
                    .f64_fixed("momentum_seconds", c.timings.momentum, 9)
                    .f64_fixed("poisson_seconds", c.timings.poisson, 9)
                    .f64_fixed("correction_seconds", c.timings.correction, 9)
                    .f64_fixed("other_seconds", c.timings.other, 9)
                    .f64_fixed("speedup", c.speedup, 4)
                    .bool("bitwise_equal", c.bitwise_equal),
            );
        }
        JsonObject::new()
            .str("scenario", &self.scenario)
            .usize("elements", self.elements)
            .usize("rows", self.rows)
            .usize("steps", self.steps)
            .usize("repetitions", self.repetitions)
            .array("cases", cases)
            .finish()
    }

    /// Aligned human-readable table.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "{}: {} elements / {} rows, {} step(s), min of {} rep(s)\n",
            self.scenario, self.elements, self.rows, self.steps, self.repetitions
        );
        for c in &self.cases {
            out.push_str(&format!(
                "  {:>2}t {:>9.3} ms  {:>5.2}x  (assembly {:.1}% | momentum {:.1}% | \
                 poisson {:.1}% | correction {:.1}% | other {:.1}%)  bitwise == 1t\n",
                c.threads,
                c.seconds * 1e3,
                c.speedup,
                100.0 * c.timings.assembly / c.seconds,
                100.0 * c.timings.momentum / c.seconds,
                100.0 * c.timings.poisson / c.seconds,
                100.0 * c.timings.correction / c.seconds,
                100.0 * c.timings.other / c.seconds,
            ));
        }
        out
    }
}

/// One resolution of the pressure-solver comparison: plain Jacobi-CG
/// against MG-CG on the identical pinned Poisson system, plus the
/// streamed-bytes bandwidth proxy of the assembled CSR operator against the
/// matrix-free one.
#[derive(Debug, Clone)]
pub struct PressureSolverCase {
    /// Elements per direction of the cavity box (`n³` mesh).
    pub resolution: usize,
    /// Solver rows (mesh nodes).
    pub rows: usize,
    /// Iterations of the Jacobi-CG solve.
    pub cg_iterations: usize,
    /// Fastest Jacobi-CG wall-clock (seconds).
    pub cg_seconds: f64,
    /// Iterations of the MG-CG solve.
    pub mgcg_iterations: usize,
    /// Fastest MG-CG wall-clock (seconds).
    pub mgcg_seconds: f64,
    /// Multigrid levels of the V-cycle hierarchy.
    pub mgcg_levels: usize,
    /// Bytes one CSR `A·x` streams (operator data only).
    pub csr_streamed_bytes: usize,
    /// Bytes one matrix-free `A·x` streams (operator data only).
    pub matrix_free_streamed_bytes: usize,
}

/// Measures the pressure-solver comparison on lid-driven-cavity boxes at the
/// given resolutions: the same deterministic right-hand side solved to the
/// driver's tolerance by Jacobi-CG and MG-CG (fastest of `repetitions`,
/// serial — iteration counts are thread-invariant by the determinism
/// contract).
///
/// # Panics
/// Panics if a solve fails to converge or the cavity box is not recognised
/// as a structured lattice (the multigrid glue must always succeed here).
pub fn measure_pressure_solvers(
    resolutions: &[usize],
    repetitions: usize,
) -> Vec<PressureSolverCase> {
    assert!(repetitions > 0);
    let options = SolveOptions { max_iterations: 4000, tolerance: 1e-10, ..Default::default() };
    let mut cases = Vec::new();
    for &n in resolutions {
        let scenario = Scenario::new(crate::scenario::ScenarioKind::LidDrivenCavity, n);
        let mesh = scenario.build_mesh();
        let pins = scenario.pressure_pins(&mesh);
        let laplacian = pressure_laplacian(&mesh, 128, &pins);
        let matrix_free = MatrixFreeLaplacian::new(&mesh, &pins);
        // A deterministic smooth-plus-noise RHS with the pinned rows zeroed —
        // representative of a projection right-hand side without depending
        // on the trajectory.
        let mut rhs: Vec<f64> = (0..laplacian.dim())
            .map(|i| {
                let t =
                    (i as u64).wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((t >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            })
            .collect();
        for &pin in &pins {
            rhs[pin] = 0.0;
        }

        let mut multigrid =
            build_pressure_multigrid(&mesh, &laplacian, &MultigridOptions::default())
                .expect("cavity boxes are structured lattices");
        let mgcg_levels = multigrid.num_levels();

        let mut cg_iterations = 0;
        let mut mgcg_iterations = 0;
        let cg_seconds = lv_trace::time_min(repetitions, || {
            let cg = conjugate_gradient(&laplacian, &rhs, &options).expect("CG converges");
            cg_iterations = cg.iterations;
        });
        let mgcg_seconds = lv_trace::time_min(repetitions, || {
            let mg = mg_preconditioned_cg(&laplacian, &mut multigrid, &rhs, &options)
                .expect("MG-CG converges");
            mgcg_iterations = mg.iterations;
        });

        cases.push(PressureSolverCase {
            resolution: n,
            rows: laplacian.dim(),
            cg_iterations,
            cg_seconds,
            mgcg_iterations,
            mgcg_seconds,
            mgcg_levels,
            csr_streamed_bytes: LinearOperator::streamed_bytes(&laplacian),
            matrix_free_streamed_bytes: matrix_free.streamed_bytes(),
        });
    }
    cases
}

/// Renders the `pressure_solver` cases as a JSON array via the shared
/// [`lv_trace::json`] emitter.
pub fn pressure_solver_cases_to_json(cases: &[PressureSolverCase]) -> String {
    let mut out = String::from("[\n");
    for (i, c) in cases.iter().enumerate() {
        out.push_str("    ");
        out.push_str(
            &JsonObject::new()
                .usize("resolution", c.resolution)
                .usize("rows", c.rows)
                .usize("cg_iterations", c.cg_iterations)
                .f64_fixed("cg_seconds", c.cg_seconds, 9)
                .usize("mgcg_iterations", c.mgcg_iterations)
                .f64_fixed("mgcg_seconds", c.mgcg_seconds, 9)
                .usize("mgcg_levels", c.mgcg_levels)
                .usize("csr_streamed_bytes", c.csr_streamed_bytes)
                .usize("matrix_free_streamed_bytes", c.matrix_free_streamed_bytes)
                .finish(),
        );
        out.push_str(if i + 1 < cases.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]");
    out
}

/// Serializes driver reports (and the pressure-solver comparison, when
/// measured) as the `BENCH_driver.json` document.
pub fn driver_bench_to_json(
    host_threads: usize,
    reports: &[DriverBenchReport],
    pressure: &[PressureSolverCase],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"bench\": \"wallclock_driver\",\n  \"host_threads\": {host_threads},\n"
    ));
    out.push_str("  \"runs\": [\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&r.to_json());
        out.push_str(if i + 1 < reports.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]");
    if !pressure.is_empty() {
        out.push_str(",\n  \"pressure_solver\": ");
        out.push_str(&pressure_solver_cases_to_json(pressure));
    }
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioKind;
    use lv_kernel::MomentumPath;

    #[test]
    fn driver_bench_measures_validates_and_renders() {
        let scenario = Scenario::new(ScenarioKind::LidDrivenCavity, 4);
        let config =
            StepperConfig::default().with_vector_size(32).with_momentum_path(MomentumPath::Batched);
        let report = DriverBenchReport::measure(&scenario, config, 1, &[2], 1);
        assert_eq!(report.cases.len(), 2);
        assert_eq!(report.cases[0].threads, 1);
        assert_eq!(report.cases[1].threads, 2);
        for c in &report.cases {
            assert!(c.seconds > 0.0 && c.seconds.is_finite());
            assert!(c.timings.total() > 0.0);
            assert!(c.bitwise_equal);
        }
        let json = report.to_json();
        assert!(json.contains("\"scenario\": \"cavity\""));
        assert!(json.contains("\"poisson_seconds\""));
        let doc = driver_bench_to_json(4, std::slice::from_ref(&report), &[]);
        assert!(doc.contains("\"bench\": \"wallclock_driver\""));
        assert!(doc.contains("\"host_threads\": 4"));
        assert!(!doc.contains("\"pressure_solver\""));
        assert!(report.to_text().contains("bitwise == 1t"));
    }

    #[test]
    fn pressure_solver_comparison_favors_multigrid() {
        let cases = measure_pressure_solvers(&[6, 8], 1);
        assert_eq!(cases.len(), 2);
        for c in &cases {
            assert_eq!(c.rows, (c.resolution + 1).pow(3));
            assert!(c.mgcg_iterations < c.cg_iterations, "MG-CG must cut iterations");
            assert!(c.mgcg_levels >= 2);
            assert!(c.matrix_free_streamed_bytes < c.csr_streamed_bytes);
            assert!(c.cg_seconds > 0.0 && c.mgcg_seconds > 0.0);
        }
        let doc = driver_bench_to_json(4, &[], &cases);
        assert!(doc.contains("\"pressure_solver\": ["));
        assert!(doc.contains("\"mgcg_iterations\""));
        assert!(doc.contains("\"matrix_free_streamed_bytes\""));
    }
}
