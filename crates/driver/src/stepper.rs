//! The Chorin fractional-step time integrator.
//!
//! One [`Stepper::step_on`] call advances the state through the three
//! sub-steps of a pressure-projection scheme, all on **one** shared
//! [`Team`]:
//!
//! 1. **Predictor** — the existing mini-app machinery: colored parallel
//!    assembly of the semi-implicit momentum system, the weak pressure
//!    gradient `−∫ N_a ∂p/∂x_i` of the current pressure added to the RHS,
//!    Dirichlet rows applied, and the (batched or sequential) pooled
//!    BiCGSTAB momentum solve for the velocity increment → `u*`.
//! 2. **Pressure Poisson** — `L φ = −(ρ/Δt) d(u*)` with the mesh-true
//!    Laplacian assembled by [`lv_kernel::PressureOperators`] (symmetrically
//!    pinned per scenario), solved with pooled CG — by default
//!    preconditioned by the geometric-multigrid V-cycle when the mesh is a
//!    structured box lattice ([`PressureSolver::MgCg`]), plain
//!    Jacobi-preconditioned CG otherwise.
//! 3. **Correction** — `u ← u* − (Δt/ρ) M⁻¹ g(φ)` with the lumped-mass
//!    nodal gradient, re-imposition of the scenario's velocity BCs, and the
//!    incremental pressure update `p ← p + φ`.
//!
//! Every kernel in the chain (colored sweeps, pooled Krylov, fixed-order
//! diagnostics) is bitwise reproducible across thread counts, so a whole
//! trajectory is **bitwise identical for threads ∈ {1, 2, 4, …}** — which is
//! also what makes checkpoint/restart exactly resumable: the state is
//! `(step, time, velocity, pressure)` and the step map is a pure function
//! of it.
//!
//! Δt is either fixed or CFL-adaptive (`Δt = clamp(C·h/‖u‖_∞)`), recomputed
//! from the state at the start of every step — deterministic, and therefore
//! restart-safe without storing it.

use crate::fault::{FaultKind, FaultPlan};
use crate::scenario::Scenario;
use lv_kernel::{
    build_pressure_multigrid, solve_momentum_on, weak_divergence_vector_norm, ElementWorkspace,
    KernelConfig, MomentumPath, NastinAssembly, OptLevel, PressureOperators,
};
use lv_mesh::{Field, Mesh, VectorField};
use lv_runtime::Team;
use lv_solver::{
    conjugate_gradient_on, first_non_finite, mg_preconditioned_cg_on, BreakdownKind, CsrMatrix,
    GeometricMultigrid, MultigridOptions, SolveOptions, SolverError,
};
use lv_trace::{counters, spans, Event};
use std::time::Instant;

/// Number of spatial dimensions (velocity components per node).
const NDIME: usize = lv_kernel::NDIME;

/// Which Krylov setup solves the pressure-Poisson system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PressureSolver {
    /// Jacobi-preconditioned Conjugate Gradient (the pre-multigrid default).
    Cg,
    /// Conjugate Gradient preconditioned by the geometric-multigrid V-cycle
    /// ([`lv_kernel::build_pressure_multigrid`]).  Falls back to [`Cg`]
    /// (`PressureSolver::Cg`) when the mesh is not a recognisable structured
    /// box lattice; [`Stepper::pressure_solver`] reports the path actually
    /// taken.
    MgCg,
}

impl PressureSolver {
    /// Stable CLI/report name (`cg` / `mgcg`).
    pub fn name(&self) -> &'static str {
        match self {
            PressureSolver::Cg => "cg",
            PressureSolver::MgCg => "mgcg",
        }
    }

    /// Parses a CLI name (the inverse of [`name`](Self::name)).
    pub fn from_name(name: &str) -> Option<PressureSolver> {
        match name {
            "cg" => Some(PressureSolver::Cg),
            "mgcg" => Some(PressureSolver::MgCg),
            _ => None,
        }
    }
}

/// Configuration of a [`Stepper`] run.
#[derive(Debug, Clone)]
pub struct StepperConfig {
    /// `VECTOR_SIZE` of the assembly and projection sweeps.
    pub vector_size: usize,
    /// Scheduling of the three momentum-component solves.
    pub momentum_path: MomentumPath,
    /// Options of the momentum BiCGSTAB solve.
    pub momentum_options: SolveOptions,
    /// Options of the pressure-Poisson CG solve.
    pub poisson_options: SolveOptions,
    /// Which solver setup handles the pressure-Poisson system.
    pub pressure_solver: PressureSolver,
    /// CFL number for adaptive time stepping (`Δt = C·h/‖u‖_∞`, clamped to
    /// `[dt_min, dt_max]`); `None` runs at the fixed `dt`.
    pub cfl: Option<f64>,
    /// Fixed time step (also the fallback when the CFL clamp saturates).
    pub dt: f64,
    /// Lower Δt clamp of the CFL controller.
    pub dt_min: f64,
    /// Upper Δt clamp of the CFL controller.
    pub dt_max: f64,
    /// Projection sweeps per step.  Each sweep solves one Poisson system and
    /// applies one lumped-mass correction; because the correction is an
    /// *approximate* projection (the FE Laplacian `L` is a consistent but
    /// not exact stand-in for the discrete composition `D·M⁻¹·G`), the
    /// sweeps act as Richardson iterations on the divergence constraint,
    /// contracting the weak divergence by ~2× each.  1 is the classic
    /// scheme; the default 3 drives the predictor's discrete divergence
    /// down by an order of magnitude.
    pub projection_sweeps: usize,
    /// Δt-backoff retry budget of [`Stepper::step_recovering_on`]: how many
    /// times a failed step may be rolled back and retried with Δt halved
    /// before the run surfaces a [`RunError`].
    pub max_dt_retries: usize,
    /// Deterministic fault schedule for testing the recovery paths
    /// (`None` in production runs).
    pub fault_plan: Option<FaultPlan>,
    /// Window of the convergence-stall detector: how many consecutive
    /// successful steps must sit on a residual plateau before a
    /// slow-convergence event fires (see [`Stepper::slow_convergence_events`]).
    pub stall_window: usize,
    /// Residual threshold of the detector, as a multiple of the larger
    /// solver tolerance: a step only counts toward a plateau when
    /// `max(momentum, poisson)` residual exceeds `stall_factor · tol`.
    /// Healthy runs converge *to* the tolerance, so they never plateau
    /// above `10 · tol` (the default).
    pub stall_factor: f64,
}

impl Default for StepperConfig {
    fn default() -> Self {
        StepperConfig {
            vector_size: 128,
            momentum_path: MomentumPath::Batched,
            momentum_options: SolveOptions {
                max_iterations: 2000,
                tolerance: 1e-10,
                ..Default::default()
            },
            poisson_options: SolveOptions {
                max_iterations: 4000,
                tolerance: 1e-10,
                ..Default::default()
            },
            pressure_solver: PressureSolver::MgCg,
            cfl: Some(0.4),
            dt: 0.02,
            dt_min: 1e-4,
            dt_max: 0.1,
            projection_sweeps: 3,
            max_dt_retries: 3,
            fault_plan: None,
            stall_window: 8,
            stall_factor: 10.0,
        }
    }
}

impl StepperConfig {
    /// Builder: fixed time step (disables the CFL controller).
    pub fn with_fixed_dt(mut self, dt: f64) -> Self {
        assert!(dt > 0.0, "time step must be positive");
        self.cfl = None;
        self.dt = dt;
        self
    }

    /// Builder: CFL-adaptive time stepping with the given Courant number.
    pub fn with_cfl(mut self, cfl: f64) -> Self {
        assert!(cfl > 0.0, "CFL number must be positive");
        self.cfl = Some(cfl);
        self
    }

    /// Builder: momentum scheduling path.
    pub fn with_momentum_path(mut self, path: MomentumPath) -> Self {
        self.momentum_path = path;
        self
    }

    /// Builder: `VECTOR_SIZE` of the sweeps.
    pub fn with_vector_size(mut self, vector_size: usize) -> Self {
        assert!(vector_size > 0, "VECTOR_SIZE must be positive");
        self.vector_size = vector_size;
        self
    }

    /// Builder: pressure-Poisson solver setup.
    pub fn with_pressure_solver(mut self, solver: PressureSolver) -> Self {
        self.pressure_solver = solver;
        self
    }

    /// Builder: Δt-backoff retry budget of the recovering step loop.
    pub fn with_max_dt_retries(mut self, retries: usize) -> Self {
        self.max_dt_retries = retries;
        self
    }

    /// Builder: deterministic fault schedule (testing only).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Builder: convergence-stall detector window and residual factor
    /// (`window` steps on a plateau above `factor · tolerance` fire one
    /// slow-convergence event).
    pub fn with_stall_detector(mut self, window: usize, factor: f64) -> Self {
        assert!(window > 0, "the stall window needs at least one step");
        self.stall_window = window;
        self.stall_factor = factor;
        self
    }
}

/// The complete simulation state: everything a checkpoint stores and a
/// restart needs.
#[derive(Debug, Clone)]
pub struct SimState {
    /// Completed steps.
    pub step: u64,
    /// Simulation time.
    pub time: f64,
    /// Nodal velocity.
    pub velocity: VectorField,
    /// Nodal pressure.
    pub pressure: Field,
}

/// Wall-clock breakdown of one step, in seconds.  The four phase buckets
/// plus the explicit [`other`](StepTimings::other) remainder account for the
/// *whole* step: [`total`](StepTimings::total) equals the step's measured
/// wall-clock, so per-phase shares always add up.
#[derive(Debug, Clone, Copy, Default)]
pub struct StepTimings {
    /// Momentum assembly + pressure force + Dirichlet rows.
    pub assembly: f64,
    /// Momentum (predictor) solve.
    pub momentum: f64,
    /// Weak divergence + pressure-Poisson CG solve(s).
    pub poisson: f64,
    /// Weak gradient, velocity correction, BCs and pressure update.
    pub correction: f64,
    /// Everything between the phase timers: Δt control, fault bookkeeping,
    /// workspace setup, end-of-step diagnostics (divergence norm, kinetic
    /// energy).  Measured as the step total minus the four phases, so the
    /// breakdown is exhaustive by construction.
    pub other: f64,
}

impl StepTimings {
    /// Total step wall-clock (the four phases plus the `other` remainder —
    /// equal to the step's externally measured duration).
    pub fn total(&self) -> f64 {
        self.assembly + self.momentum + self.poisson + self.correction + self.other
    }

    /// Accumulates another step's timings (used by the bench).
    pub fn accumulate(&mut self, other: &StepTimings) {
        self.assembly += other.assembly;
        self.momentum += other.momentum;
        self.poisson += other.poisson;
        self.correction += other.correction;
        self.other += other.other;
    }
}

/// Diagnostics and timings of one completed step.
#[derive(Debug, Clone)]
pub struct StepReport {
    /// Step index after the step (1-based).
    pub step: u64,
    /// Simulation time after the step.
    pub time: f64,
    /// Δt used by the step.
    pub dt: f64,
    /// Total momentum (BiCGSTAB) iterations across the three components.
    pub momentum_iterations: usize,
    /// Worst final relative residual of the momentum components.
    pub momentum_residual: f64,
    /// Total pressure-Poisson CG iterations across the projection sweeps.
    pub poisson_iterations: usize,
    /// Worst final relative residual of the Poisson solves.
    pub poisson_residual: f64,
    /// Discrete divergence `‖d(u*)‖₂` of the predictor velocity (the weak
    /// divergence vector `d_a = ∫ N_a ∇·u` the projection drives to zero).
    pub divergence_pre: f64,
    /// Discrete divergence `‖d(u)‖₂` after the projection correction.
    pub divergence_post: f64,
    /// Kinetic energy `½ρ∫|u|²` after the step.
    pub kinetic_energy: f64,
    /// How many failed attempts preceded this step (Δt-backoff rollbacks of
    /// [`Stepper::step_recovering_on`]; always 0 on the plain
    /// [`Stepper::step_on`] path).
    pub retries: usize,
    /// How many projection sweeps fell back from MG-CG to plain CG after an
    /// MG-preconditioned breakdown.
    pub poisson_fallbacks: usize,
    /// Wall-clock breakdown.
    pub timings: StepTimings,
}

/// Why a step failed.
#[derive(Debug, Clone, PartialEq)]
pub enum StepError {
    /// The momentum (predictor) solve failed.
    Momentum(SolverError),
    /// The pressure-Poisson solve failed.
    Poisson(SolverError),
    /// The CFL controller rejected its inputs: a non-finite `‖u‖_∞` or a
    /// non-finite/non-positive Δt candidate (never a silent NaN Δt).
    InvalidDt {
        /// The `‖u‖_∞` the controller saw (NaN when the velocity field
        /// contains a non-finite entry).
        umax: f64,
        /// The rejected Δt candidate.
        dt: f64,
    },
    /// The corrected velocity contains a non-finite entry — the trajectory
    /// blew up even though every solve nominally converged.
    NonFiniteVelocity {
        /// First offending index in the interleaved velocity values.
        index: usize,
    },
}

impl StepError {
    /// The phase of the fractional step that failed (`cfl` / `momentum` /
    /// `poisson` / `correction`), for diagnostics.
    pub fn phase(&self) -> &'static str {
        match self {
            StepError::Momentum(_) => "momentum",
            StepError::Poisson(_) => "poisson",
            StepError::InvalidDt { .. } => "cfl",
            StepError::NonFiniteVelocity { .. } => "correction",
        }
    }

    /// The last solver residual at failure, when a solver failed.
    pub fn residual(&self) -> Option<f64> {
        match self {
            StepError::Momentum(e) | StepError::Poisson(e) => e.residual(),
            _ => None,
        }
    }
}

impl std::fmt::Display for StepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StepError::Momentum(e) => write!(f, "momentum solve failed: {e}"),
            StepError::Poisson(e) => write!(f, "pressure-Poisson solve failed: {e}"),
            StepError::InvalidDt { umax, dt } => write!(
                f,
                "CFL controller rejected the step: ‖u‖_∞ = {umax:e}, Δt candidate = {dt:e}"
            ),
            StepError::NonFiniteVelocity { index } => {
                write!(f, "velocity entry {index} is non-finite after the correction")
            }
        }
    }
}

impl std::error::Error for StepError {}

/// A run that could not be completed: the retry budget of
/// [`Stepper::step_recovering_on`] is exhausted (or recovery is disabled)
/// and the last attempt's failure is surfaced with its step context.
#[derive(Debug, Clone, PartialEq)]
pub struct RunError {
    /// 1-based index of the step that could not be completed.
    pub step: u64,
    /// Simulation time the run stalled at (the time *before* the failed
    /// step).
    pub time: f64,
    /// Attempts made on the step (1 + retries).
    pub attempts: usize,
    /// The failure of the final attempt.
    pub error: StepError,
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "step {} failed in the {} phase after {} attempt(s) at t = {:.6}: {}",
            self.step,
            self.error.phase(),
            self.attempts,
            self.time,
            self.error
        )
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// The fractional-step simulation driver: owns the assembled operators, the
/// reusable work buffers and the evolving [`SimState`].
#[derive(Debug)]
pub struct Stepper {
    scenario: Scenario,
    config: StepperConfig,
    assembly: NastinAssembly,
    operators: PressureOperators,
    laplacian: CsrMatrix,
    multigrid: Option<GeometricMultigrid>,
    pins: Vec<usize>,
    h_char: f64,
    // Transient Δt multiplier of the retry loop (0.5^attempt); 1.0 outside
    // a recovery.  Not part of SimState: a successful step resets it, so
    // trajectories remain a pure function of the state.
    dt_backoff: f64,
    // The stepper's own mutable copy of the configured fault schedule:
    // fired faults stay spent across the rollback/retry of a recovery
    // (the snapshot covers SimState only).
    fault_plan: Option<FaultPlan>,
    state: SimState,
    // Convergence-stall detector state: the residuals of the last
    // `stall_window` successful steps, and how often a plateau fired.
    // Diagnostic only — never part of SimState, never steers the run.
    stall_residuals: std::collections::VecDeque<f64>,
    slow_convergence: u64,
    matrix: CsrMatrix,
    rhs: Vec<f64>,
    grad: Vec<f64>,
    div: Vec<f64>,
    poisson_rhs: Vec<f64>,
    workspaces: Vec<ElementWorkspace>,
}

impl Stepper {
    /// Builds a stepper for `scenario` from its initial state.
    pub fn new(scenario: Scenario, config: StepperConfig) -> Self {
        let mesh = scenario.build_mesh();
        Self::with_mesh(scenario, config, mesh)
    }

    /// Builds a stepper on a caller-provided mesh (e.g. a renumbered one —
    /// the scenario only supplies physics, BCs and initial fields).
    pub fn with_mesh(scenario: Scenario, config: StepperConfig, mesh: Mesh) -> Self {
        let (velocity, pressure) = scenario.initial_state(&mesh);
        let state = SimState { step: 0, time: 0.0, velocity, pressure };
        Self::from_state(scenario, config, mesh, state)
    }

    /// Builds a stepper resuming from an existing state (the restart path;
    /// see [`crate::checkpoint`]).
    ///
    /// # Panics
    /// Panics if the state's field sizes do not match the mesh.
    pub fn from_state(
        scenario: Scenario,
        config: StepperConfig,
        mesh: Mesh,
        state: SimState,
    ) -> Self {
        assert_eq!(
            state.velocity.num_nodes(),
            mesh.num_nodes(),
            "restart velocity does not match the mesh"
        );
        assert_eq!(
            state.pressure.len(),
            mesh.num_nodes(),
            "restart pressure does not match the mesh"
        );
        // The real Δt is validated and set per step (checked_next_dt →
        // set_dt); the placeholder only keeps construction infallible so an
        // invalid configured dt surfaces as a structured StepError::InvalidDt
        // at step time instead of an assert here.
        let construction_dt =
            if config.dt.is_finite() && config.dt > 0.0 { config.dt } else { 1.0 };
        let kernel_config = KernelConfig::new(config.vector_size, OptLevel::Vec1)
            .with_viscosity(scenario.viscosity)
            .with_density(scenario.density)
            .with_dt(construction_dt);
        let assembly = NastinAssembly::new(mesh.clone(), kernel_config);
        let operators = PressureOperators::new(&mesh, config.vector_size);
        let pins = scenario.pressure_pins(&mesh);
        let mut laplacian = operators.assemble_laplacian();
        laplacian.pin_rows_symmetric(&pins);
        debug_assert!(laplacian.is_symmetric(1e-12), "pinned pressure Laplacian must stay SPD");
        // The V-cycle hierarchy is a pure function of the mesh and the
        // pinned Laplacian, so a restarted stepper rebuilds it identically
        // (bitwise) and trajectories stay exactly resumable.
        let multigrid = match config.pressure_solver {
            PressureSolver::MgCg => {
                build_pressure_multigrid(&mesh, &laplacian, &MultigridOptions::default())
            }
            PressureSolver::Cg => None,
        };
        let n = mesh.num_nodes();
        let matrix = assembly.new_matrix();
        let h_char = mesh.characteristic_length();
        let fault_plan = config.fault_plan.clone();
        Stepper {
            scenario,
            config,
            assembly,
            operators,
            laplacian,
            multigrid,
            pins,
            h_char,
            dt_backoff: 1.0,
            fault_plan,
            state,
            stall_residuals: std::collections::VecDeque::new(),
            slow_convergence: 0,
            matrix,
            rhs: vec![0.0; NDIME * n],
            grad: vec![0.0; NDIME * n],
            div: vec![0.0; n],
            poisson_rhs: vec![0.0; n],
            workspaces: Vec::new(),
        }
    }

    /// The scenario this stepper runs.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The stepper configuration.
    pub fn config(&self) -> &StepperConfig {
        &self.config
    }

    /// The mesh.
    pub fn mesh(&self) -> &Mesh {
        self.assembly.mesh()
    }

    /// The current simulation state.
    pub fn state(&self) -> &SimState {
        &self.state
    }

    /// The projection operators (for external diagnostics).
    pub fn operators(&self) -> &PressureOperators {
        &self.operators
    }

    /// The pressure-Poisson path actually in use: [`PressureSolver::MgCg`]
    /// only when the configured multigrid hierarchy could be built for this
    /// mesh, [`PressureSolver::Cg`] otherwise.
    pub fn pressure_solver(&self) -> PressureSolver {
        if self.multigrid.is_some() {
            PressureSolver::MgCg
        } else {
            PressureSolver::Cg
        }
    }

    /// Rows per multigrid level (finest first), when the V-cycle is active.
    pub fn multigrid_levels(&self) -> Option<Vec<usize>> {
        self.multigrid.as_ref().map(GeometricMultigrid::level_rows)
    }

    /// The Δt the next step will use, given the current state — the
    /// validated [`Stepper::checked_next_dt`], or NaN when the controller
    /// rejects its inputs (a preview must stay infallible).
    pub fn next_dt(&self) -> f64 {
        self.checked_next_dt().unwrap_or(f64::NAN)
    }

    /// The validated Δt of the next step, including any active retry
    /// backoff.
    ///
    /// # Errors
    /// Returns [`StepError::InvalidDt`] when `‖u‖_∞` is non-finite (the
    /// naive `max`-fold would silently mask NaN entries — Rust's `f64::max`
    /// returns the non-NaN operand) or when the Δt candidate comes out
    /// non-finite or non-positive, instead of letting a poisoned Δt start
    /// a NaN trajectory.
    pub fn checked_next_dt(&self) -> Result<f64, StepError> {
        let base = match self.config.cfl {
            Some(cfl) => {
                let umax = if first_non_finite(self.state.velocity.as_slice()).is_some() {
                    f64::NAN
                } else {
                    self.state.velocity.max_magnitude()
                };
                if !umax.is_finite() {
                    return Err(StepError::InvalidDt { umax, dt: f64::NAN });
                }
                (cfl * self.h_char / umax.max(1e-9)).clamp(self.config.dt_min, self.config.dt_max)
            }
            None => self.config.dt,
        };
        // The backoff halving happens *after* the CFL clamp so a retry's
        // smaller Δt is not clamped back up to dt_min..dt_max.
        let dt = base * self.dt_backoff;
        if !dt.is_finite() || dt <= 0.0 {
            return Err(StepError::InvalidDt { umax: self.state.velocity.max_magnitude(), dt });
        }
        Ok(dt)
    }

    /// Kinetic energy of the current state.
    pub fn kinetic_energy(&self) -> f64 {
        self.operators.kinetic_energy(&self.state.velocity, self.scenario.density)
    }

    /// Continuous `‖∇·u‖_{L2}` of the current state (the pointwise
    /// divergence of the Q1 interpolant; see
    /// [`PressureOperators::weak_divergence_norm`] for the discrete measure
    /// the projection controls).
    pub fn divergence_norm(&self) -> f64 {
        self.operators.divergence_l2(&self.state.velocity)
    }

    /// Discrete divergence `‖d(u)‖₂` of the current state.
    pub fn weak_divergence_norm(&self) -> f64 {
        self.operators.weak_divergence_norm(&self.state.velocity)
    }

    /// Continuous L2 error against the scenario's analytic velocity at the
    /// current time, for scenarios that have one.
    pub fn analytic_velocity_error(&self) -> Option<f64> {
        let time = self.state.time;
        // Probe whether the scenario has an analytic solution at all.
        self.scenario.analytic_velocity(lv_mesh::Vec3::ZERO, time)?;
        let scenario = &self.scenario;
        Some(self.operators.velocity_l2_error(&self.state.velocity, |p| {
            scenario.analytic_velocity(p, time).expect("analytic solution probed above").to_array()
        }))
    }

    fn ensure_workspaces(&mut self, threads: usize) {
        while self.workspaces.len() < threads {
            self.workspaces.push(ElementWorkspace::new(self.config.vector_size));
        }
    }

    /// Advances the state by one fractional step on the caller's team.
    ///
    /// # Errors
    /// Returns [`StepError`] if the momentum or Poisson solve fails to
    /// converge; the state is left unchanged in that case only up to the
    /// failed sub-step (a failed run should be abandoned, not resumed).
    pub fn step_on(&mut self, team: &Team) -> Result<StepReport, StepError> {
        let trace = team.trace();
        let step_start = Instant::now();
        let mut timings = StepTimings::default();
        let dt = self.checked_next_dt()?;
        self.assembly.set_dt(dt);
        let rho = self.scenario.density;
        let t_new = self.state.time + dt;
        let step_index = self.state.step + 1;
        // Supervision faults fire before any state is touched and on the
        // leader only (no team barrier is pending here, so a panic unwinds
        // cleanly through `catch_unwind` instead of deadlocking workers).
        if let Some(plan) = &mut self.fault_plan {
            if plan.fire(FaultKind::Stall, step_index) {
                crate::fault::busy_stall();
            }
            if plan.fire(FaultKind::Panic, step_index) {
                panic!("injected worker panic at step {step_index}");
            }
        }
        self.ensure_workspaces(team.num_threads());
        // Dropped (early-return) step spans record with iters = 0 — a failed
        // attempt; a completed step finishes with iters = 1.
        let step_span = trace.map(|t| t.span(spans::STEP, 0).aux(step_index));

        // --- 1. predictor: assemble + pressure force + Dirichlet ---------
        let t0 = Instant::now();
        let phase = trace.map(|t| t.span(spans::ASSEMBLY, 0));
        self.assembly.assemble_parallel_into_on(
            team,
            &self.state.velocity,
            &self.state.pressure,
            &mut self.matrix,
            &mut self.rhs,
            &mut self.workspaces,
        );
        // Momentum RHS gets the −∇p force of the current pressure: the
        // mini-app assembles only convection/viscous/mass terms, the weak
        // pressure gradient closes the equation.
        self.operators.weak_gradient_on(team, self.state.pressure.as_slice(), &mut self.grad);
        for (r, g) in self.rhs.iter_mut().zip(&self.grad) {
            *r -= g;
        }
        self.assembly.apply_dirichlet(&mut self.matrix, &mut self.rhs);
        if let Some(s) = phase {
            s.iters(1).finish();
        }
        timings.assembly = t0.elapsed().as_secs_f64();

        // --- momentum solve → u* ------------------------------------------
        if let Some(plan) = &mut self.fault_plan {
            if plan.fire(FaultKind::PoisonRhs, step_index) {
                // A deterministic (seed, step)-derived entry turns NaN: the
                // solver's non-finite entry guards must catch it before a
                // single Krylov iteration runs.
                let at = plan.index(step_index, 0, self.rhs.len());
                self.rhs[at] = f64::NAN;
            }
            if plan.fire(FaultKind::MomentumBreakdown, step_index) {
                return Err(StepError::Momentum(SolverError::Breakdown {
                    kind: BreakdownKind::Injected,
                    iteration: 0,
                    residual: f64::INFINITY,
                }));
            }
        }
        let t0 = Instant::now();
        let phase = trace.map(|t| t.span(spans::MOMENTUM, 0));
        let solve = solve_momentum_on(
            team,
            &self.matrix,
            &self.rhs,
            &self.config.momentum_options,
            self.config.momentum_path,
        )
        .map_err(StepError::Momentum)?;
        for (v, d) in self.state.velocity.as_mut_slice().iter_mut().zip(&solve.increment) {
            *v += d;
        }
        self.scenario.apply_velocity_bcs(self.assembly.mesh(), &mut self.state.velocity, t_new);
        if let Some(s) = phase {
            s.iters(solve.total_iterations() as u64).aux(solve.worst_residual.to_bits()).finish();
        }
        timings.momentum = t0.elapsed().as_secs_f64();

        // --- 2+3. projection sweeps: Poisson solve + correction -----------
        let mut poisson_iterations = 0;
        let mut poisson_residual = 0.0f64;
        let mut poisson_fallbacks = 0usize;
        let mut divergence_pre = 0.0f64;
        let scale = -rho / dt;
        let correction = dt / rho;
        for sweep in 0..self.config.projection_sweeps.max(1) {
            let t0 = Instant::now();
            let phase = trace.map(|t| t.span(spans::POISSON, 0));
            self.operators.weak_divergence_on(team, &self.state.velocity, &mut self.div);
            if sweep == 0 {
                // ‖d(u*)‖₂ of the raw predictor field, read off the first
                // sweep's divergence vector — no extra sweep over the mesh.
                divergence_pre = weak_divergence_vector_norm(&self.div);
            }
            for (b, d) in self.poisson_rhs.iter_mut().zip(&self.div) {
                *b = scale * d;
            }
            for &pin in &self.pins {
                self.poisson_rhs[pin] = 0.0;
            }
            let mut inject_mg = false;
            if let Some(plan) = &mut self.fault_plan {
                if plan.fire(FaultKind::PoissonBreakdown, step_index) {
                    // Fails the whole step (past the CG fallback): the
                    // Δt-backoff retry is the recovery under test.
                    return Err(StepError::Poisson(SolverError::Breakdown {
                        kind: BreakdownKind::Injected,
                        iteration: 0,
                        residual: f64::INFINITY,
                    }));
                }
                inject_mg = plan.fire(FaultKind::MultigridBreakdown, step_index);
            }
            // The fallback chain: an MG-preconditioned breakdown (a rank-
            // deficient coarse correction, an injected fault, ...) demotes
            // this sweep to plain Jacobi-CG on the identical system instead
            // of failing the step.  Only a plain-CG failure is terminal.
            let mg_attempt = match &mut self.multigrid {
                Some(_) if inject_mg => Some(Err(SolverError::Breakdown {
                    kind: BreakdownKind::Injected,
                    iteration: 0,
                    residual: f64::INFINITY,
                })),
                Some(mg) => Some(mg_preconditioned_cg_on(
                    team,
                    &self.laplacian,
                    mg,
                    &self.poisson_rhs,
                    &self.config.poisson_options,
                )),
                None => None,
            };
            let phi = match mg_attempt {
                Some(Ok(phi)) => phi,
                Some(Err(_)) => {
                    poisson_fallbacks += 1;
                    if let Some(t) = trace {
                        t.record(Event {
                            aux: sweep as u64,
                            ..Event::instant(spans::POISSON_FALLBACK, 0, t.now_ns())
                        });
                        t.add(counters::POISSON_FALLBACKS, 1);
                    }
                    conjugate_gradient_on(
                        team,
                        &self.laplacian,
                        &self.poisson_rhs,
                        &self.config.poisson_options,
                    )
                    .map_err(StepError::Poisson)?
                }
                None => conjugate_gradient_on(
                    team,
                    &self.laplacian,
                    &self.poisson_rhs,
                    &self.config.poisson_options,
                )
                .map_err(StepError::Poisson)?,
            };
            poisson_iterations += phi.iterations;
            poisson_residual = poisson_residual.max(phi.final_residual());
            if let Some(s) = phase {
                s.iters(phi.iterations as u64).aux(phi.final_residual().to_bits()).finish();
            }
            timings.poisson += t0.elapsed().as_secs_f64();

            let t0 = Instant::now();
            let phase = trace.map(|t| t.span(spans::CORRECTION, 0));
            self.operators.weak_gradient_on(team, &phi.solution, &mut self.grad);
            let vel = self.state.velocity.as_mut_slice();
            for (node, &mass) in self.operators.lumped_mass().iter().enumerate() {
                let f = correction / mass;
                for i in 0..NDIME {
                    vel[NDIME * node + i] -= f * self.grad[NDIME * node + i];
                }
            }
            self.scenario.apply_velocity_bcs(self.assembly.mesh(), &mut self.state.velocity, t_new);
            for (p, f) in self.state.pressure.as_mut_slice().iter_mut().zip(&phi.solution) {
                *p += f;
            }
            if let Some(s) = phase {
                s.iters(1).aux(sweep as u64).finish();
            }
            timings.correction += t0.elapsed().as_secs_f64();
        }
        // Divergence blow-up guard: a step whose corrected velocity carries
        // a non-finite entry must fail structurally, never commit a NaN
        // state for the next step to trip over.
        if let Some(index) = first_non_finite(self.state.velocity.as_slice()) {
            return Err(StepError::NonFiniteVelocity { index });
        }
        self.operators.weak_divergence_on(team, &self.state.velocity, &mut self.div);
        let divergence_post = weak_divergence_vector_norm(&self.div);

        self.state.step += 1;
        self.state.time = t_new;
        let kinetic_energy = self.kinetic_energy();
        // Convergence-stall detection: a pure function of the (bitwise
        // reproducible) residual history, so it fires at the same steps on
        // every thread count and never changes behaviour.
        let stalled = self.observe_residual(solve.worst_residual.max(poisson_residual));
        if let Some(t) = trace {
            t.add(counters::STEPS, 1);
            t.add(counters::MOMENTUM_ITERATIONS, solve.total_iterations() as u64);
            t.add(counters::POISSON_ITERATIONS, poisson_iterations as u64);
            if stalled {
                t.add(counters::SLOW_CONVERGENCE, 1);
            }
        }
        if let Some(s) = step_span {
            s.iters(1).finish();
        }
        // The explicit remainder bucket: whatever the phase timers did not
        // cover (Δt control, fault bookkeeping, diagnostics), so the
        // breakdown sums to the measured step total.
        timings.other = (step_start.elapsed().as_secs_f64()
            - timings.assembly
            - timings.momentum
            - timings.poisson
            - timings.correction)
            .max(0.0);
        Ok(StepReport {
            step: self.state.step,
            time: self.state.time,
            dt,
            momentum_iterations: solve.total_iterations(),
            momentum_residual: solve.worst_residual,
            poisson_iterations,
            poisson_residual,
            divergence_pre,
            divergence_post,
            kinetic_energy,
            retries: 0,
            poisson_fallbacks,
            timings,
        })
    }

    /// Runs `steps` fractional steps, returning the per-step reports.
    ///
    /// # Errors
    /// Stops at the first failed step (see [`Stepper::step_on`]).
    pub fn run_on(&mut self, team: &Team, steps: usize) -> Result<Vec<StepReport>, StepError> {
        let mut reports = Vec::with_capacity(steps);
        for _ in 0..steps {
            reports.push(self.step_on(team)?);
        }
        Ok(reports)
    }

    /// Advances the state by one step with automatic recovery: the state is
    /// snapshotted first, and a failed attempt (solver breakdown, NaN
    /// blow-up, rejected Δt) rolls back to the snapshot and retries with Δt
    /// halved — `0.5^attempt`, up to [`StepperConfig::max_dt_retries`]
    /// retries — before surfacing a [`RunError`].
    ///
    /// Every recovery decision is a pure function of the step state (no
    /// clocks, no randomness), so recovered trajectories are **bitwise
    /// identical across thread counts**, exactly like undisturbed ones.  A
    /// successful step resets the backoff: the next step runs at the full
    /// CFL Δt again.
    ///
    /// # Errors
    /// Returns [`RunError`] with the failing step, time, attempt count and
    /// final [`StepError`] once the retry budget is exhausted.
    pub fn step_recovering_on(&mut self, team: &Team) -> Result<StepReport, RunError> {
        let snapshot = self.state.clone();
        let mut attempt: usize = 0;
        loop {
            self.dt_backoff = 0.5f64.powi(attempt as i32);
            match self.step_on(team) {
                Ok(mut report) => {
                    self.dt_backoff = 1.0;
                    report.retries = attempt;
                    return Ok(report);
                }
                Err(error) => {
                    // Roll back whatever the failed attempt half-wrote.
                    self.state = snapshot.clone();
                    if let Some(t) = team.trace() {
                        t.record(Event {
                            aux: attempt as u64,
                            ..Event::instant(spans::RETRY, 0, t.now_ns())
                        });
                        t.add(counters::RETRIES, 1);
                    }
                    attempt += 1;
                    if attempt > self.config.max_dt_retries {
                        self.dt_backoff = 1.0;
                        return Err(RunError {
                            step: snapshot.step + 1,
                            time: snapshot.time,
                            attempts: attempt,
                            error,
                        });
                    }
                }
            }
        }
    }

    /// Runs `steps` recovering fractional steps
    /// (see [`Stepper::step_recovering_on`]).
    ///
    /// # Errors
    /// Stops at the first step whose retry budget is exhausted.
    pub fn run_recovering_on(
        &mut self,
        team: &Team,
        steps: usize,
    ) -> Result<Vec<StepReport>, RunError> {
        let mut reports = Vec::with_capacity(steps);
        for _ in 0..steps {
            reports.push(self.step_recovering_on(team)?);
        }
        Ok(reports)
    }

    /// The stepper's live fault schedule, fired entries included.  A
    /// supervisor that rebuilds a stepper after a failed slice carries this
    /// spent plan into the replacement so the retry sees a healthy system —
    /// the slice-level analogue of the fire-once rule inside
    /// [`Stepper::step_recovering_on`].
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// How often the convergence-stall detector has fired on this stepper:
    /// [`StepperConfig::stall_window`] consecutive successful steps whose
    /// `max(momentum, poisson)` residual stayed above
    /// `stall_factor · tolerance` without halving across the window.  A
    /// healthy run converges to the tolerance every step, so this stays 0;
    /// a plateau means the solvers are succeeding but barely — the
    /// service-level early warning *before* retries start failing.
    /// Diagnostic only: firing never changes the trajectory.
    pub fn slow_convergence_events(&self) -> u64 {
        self.slow_convergence
    }

    /// Feeds one successful step's residual to the stall detector.
    /// Returns whether a plateau fired (the window is then cleared, so the
    /// next event needs a fresh plateau).
    fn observe_residual(&mut self, residual: f64) -> bool {
        let window = self.config.stall_window.max(1);
        let tolerance =
            self.config.momentum_options.tolerance.max(self.config.poisson_options.tolerance);
        let threshold = self.config.stall_factor * tolerance;
        self.stall_residuals.push_back(residual);
        while self.stall_residuals.len() > window {
            self.stall_residuals.pop_front();
        }
        if self.stall_residuals.len() < window {
            return false;
        }
        let oldest = *self.stall_residuals.front().expect("window is full");
        let newest = *self.stall_residuals.back().expect("window is full");
        // A plateau: every step in the window sits above the threshold and
        // the newest residual has not even halved against the oldest.
        let plateau = self.stall_residuals.iter().all(|&r| r > threshold) && newest * 2.0 > oldest;
        if plateau {
            self.slow_convergence += 1;
            self.stall_residuals.clear();
        }
        plateau
    }

    /// Runs recovering steps until `target_step` is reached, at most `quota`
    /// of them, watching the wall-clock of each individual step against
    /// `step_deadline`.
    ///
    /// This is the preemption primitive of the simulation service: the
    /// supervisor hands out bounded slices, checkpoints between them, and
    /// treats a blown deadline as a stalled worker (the state after a slow
    /// step is still consistent — it is the *caller's* policy to discard it
    /// and retry from the last checkpoint, mirroring a real watchdog kill
    /// that could have landed mid-step).  Slicing never enters the
    /// trajectory: any sequence of slices replays the exact steps of one
    /// uninterrupted [`Stepper::run_recovering_on`].
    ///
    /// # Errors
    /// Stops at the first step whose Δt-retry budget is exhausted.
    ///
    /// # Panics
    /// Panics if `quota` is zero — a slice must make progress or the
    /// supervisor loop would spin forever.
    pub fn run_slice_on(
        &mut self,
        team: &Team,
        target_step: u64,
        quota: u64,
        step_deadline: Option<std::time::Duration>,
    ) -> Result<SliceReport, RunError> {
        assert!(quota > 0, "a slice needs a non-zero step quota");
        let mut reports = Vec::new();
        while self.state.step < target_step && (reports.len() as u64) < quota {
            let step_start = Instant::now();
            reports.push(self.step_recovering_on(team)?);
            let elapsed = step_start.elapsed();
            if let Some(deadline) = step_deadline {
                if elapsed > deadline {
                    let step = self.state.step;
                    return Ok(SliceReport {
                        reports,
                        end: SliceEnd::DeadlineExceeded { step, elapsed: elapsed.as_secs_f64() },
                    });
                }
            }
        }
        let end = if self.state.step >= target_step {
            SliceEnd::Completed
        } else {
            SliceEnd::QuotaExhausted
        };
        Ok(SliceReport { reports, end })
    }
}

/// Why a [`Stepper::run_slice_on`] slice stopped.
#[derive(Debug, Clone, PartialEq)]
pub enum SliceEnd {
    /// The run reached its target step — the job is finished.
    Completed,
    /// The step quota ran out with work remaining — preempt, checkpoint,
    /// requeue.
    QuotaExhausted,
    /// One step exceeded the per-step watchdog deadline (`elapsed` is its
    /// wall-clock in seconds) — the supervisor treats the job as stalled.
    DeadlineExceeded {
        /// The step that blew the deadline (1-based, as in [`StepReport`]).
        step: u64,
        /// Wall-clock seconds that step took.
        elapsed: f64,
    },
}

/// The outcome of one bounded slice of a supervised run.
#[derive(Debug, Clone)]
pub struct SliceReport {
    /// Per-step reports of the steps the slice completed.
    pub reports: Vec<StepReport>,
    /// Why the slice stopped.
    pub end: SliceEnd,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioKind;

    fn quick_config() -> StepperConfig {
        StepperConfig::default().with_vector_size(32)
    }

    #[test]
    fn the_stall_detector_stays_quiet_on_healthy_runs_and_fires_on_forced_plateaus() {
        let scenario = Scenario::new(ScenarioKind::LidDrivenCavity, 4);
        let team = Team::new(1);
        // Healthy: every solve converges to tolerance, so nothing sits
        // above 10x tolerance and the detector never fires.
        let mut healthy = Stepper::new(scenario.clone(), quick_config());
        healthy.run_recovering_on(&team, 4).expect("healthy run");
        assert_eq!(healthy.slow_convergence_events(), 0);

        // Forced: a window of 1 above a zero threshold makes every
        // successful step a plateau — and must not change the trajectory.
        let mut forced = Stepper::new(scenario, quick_config().with_stall_detector(1, 0.0));
        forced.run_recovering_on(&team, 4).expect("forced run");
        assert_eq!(forced.slow_convergence_events(), 4);
        for (a, b) in healthy
            .state()
            .velocity
            .as_slice()
            .iter()
            .chain(healthy.state().pressure.as_slice())
            .zip(
                forced.state().velocity.as_slice().iter().chain(forced.state().pressure.as_slice()),
            )
        {
            assert_eq!(a.to_bits(), b.to_bits(), "detection must never steer the run");
        }
    }

    #[test]
    fn the_stall_detector_needs_a_full_window_and_a_real_plateau() {
        let scenario = Scenario::new(ScenarioKind::LidDrivenCavity, 4);
        let mut stepper = Stepper::new(scenario, quick_config().with_stall_detector(3, 0.0));
        // Window not yet full: no verdicts.
        assert!(!stepper.observe_residual(1.0));
        assert!(!stepper.observe_residual(1.0));
        // Full window, flat residuals: fires once and clears the window.
        assert!(stepper.observe_residual(1.0));
        assert_eq!(stepper.slow_convergence_events(), 1);
        assert!(!stepper.observe_residual(1.0), "the window restarts after a firing");
        // A residual that halves across the window is converging, not
        // plateauing.
        assert!(!stepper.observe_residual(0.9));
        assert!(!stepper.observe_residual(0.4));
        assert_eq!(stepper.slow_convergence_events(), 1);
    }

    #[test]
    fn cavity_step_produces_flow_and_reduces_divergence() {
        let scenario = Scenario::new(ScenarioKind::LidDrivenCavity, 5);
        let mut stepper = Stepper::new(scenario, quick_config());
        assert_eq!(stepper.state().step, 0);
        assert!(stepper.kinetic_energy() > 0.0, "lid nodes already move");
        let team = Team::new(1);
        let report = stepper.step_on(&team).expect("step");
        assert_eq!(report.step, 1);
        assert!(report.dt > 0.0 && report.time > 0.0);
        assert!(report.momentum_iterations > 0);
        assert!(report.momentum_residual < 1e-8);
        assert!(report.poisson_iterations > 0);
        assert!(report.poisson_residual < 1e-8);
        // The projection must reduce the divergence of the predictor field.
        assert!(report.divergence_post < report.divergence_pre);
        assert!(report.kinetic_energy > 0.0);
        assert!(report.timings.total() > 0.0);
        // Pressure is no longer the zero spectator field.
        assert!(stepper.state().pressure.max_abs() > 0.0);
        assert!(stepper.analytic_velocity_error().is_none());
    }

    #[test]
    fn phase_timings_sum_to_the_measured_step_total() {
        let scenario = Scenario::new(ScenarioKind::LidDrivenCavity, 6);
        let mut stepper = Stepper::new(scenario, quick_config());
        let team = Team::new(2);
        for _ in 0..3 {
            let t0 = Instant::now();
            let report = stepper.step_on(&team).expect("step");
            let measured = t0.elapsed().as_secs_f64();
            let total = report.timings.total();
            assert!(report.timings.other >= 0.0);
            // The explicit `other` bucket makes the breakdown exhaustive:
            // the five buckets reproduce the externally measured step
            // wall-clock to within 1% (the slack is the step_on call
            // overhead outside its own stopwatch).
            assert!(
                (measured - total).abs() <= 0.01 * measured,
                "phases sum to {total:.6}s but the step took {measured:.6}s"
            );
        }
    }

    #[test]
    fn traced_step_records_phase_spans_and_counters() {
        use lv_runtime::TraceConfig;
        use lv_trace::summary::RunSummary;
        let scenario = Scenario::new(ScenarioKind::LidDrivenCavity, 4);
        let mut stepper = Stepper::new(scenario, quick_config());
        let mut team = Team::with_trace(2, TraceConfig::default());
        let report = stepper.step_on(&team).expect("step");
        let summary = RunSummary::from_trace(team.trace_mut().expect("traced team"));
        // One step span, one assembly/momentum phase each, one poisson +
        // correction phase per projection sweep.
        let sweeps = stepper.config().projection_sweeps as u64;
        assert_eq!(summary.span("driver/step").map(|s| (s.events, s.iters)), Some((1, 1)));
        assert_eq!(summary.span("driver/assembly").map(|s| s.events), Some(1));
        assert_eq!(
            summary.span("driver/momentum").map(|s| s.iters),
            Some(report.momentum_iterations as u64)
        );
        assert_eq!(summary.span("driver/poisson").map(|s| s.events), Some(sweeps));
        assert_eq!(
            summary.span("driver/poisson").map(|s| s.iters),
            Some(report.poisson_iterations as u64)
        );
        assert_eq!(summary.span("driver/correction").map(|s| s.events), Some(sweeps));
        // The instrumented kernels underneath reported their models.
        assert!(summary.span("assembly/color_sweep").is_some());
        assert!(summary.span("solver/cg/iteration").is_some());
        assert!(summary.counter("flops").unwrap() > 0);
        assert!(summary.counter("modeled_bytes").unwrap() > 0);
        assert_eq!(summary.counter("steps"), Some(1));
        assert_eq!(summary.counter("momentum_iterations"), Some(report.momentum_iterations as u64));
        assert_eq!(summary.counter("poisson_iterations"), Some(report.poisson_iterations as u64));
        assert_eq!(summary.counter("dropped_events"), Some(0));
    }

    #[test]
    fn traced_recovery_records_retry_events() {
        use crate::fault::{FaultKind, FaultPlan};
        use lv_runtime::TraceConfig;
        use lv_trace::summary::RunSummary;
        let scenario = Scenario::new(ScenarioKind::LidDrivenCavity, 4);
        let plan = FaultPlan::new(7).with_fault(FaultKind::MomentumBreakdown, 1);
        let mut stepper = Stepper::new(scenario, quick_config().with_fault_plan(plan));
        let mut team = Team::with_trace(1, TraceConfig::default());
        let report = stepper.step_recovering_on(&team).expect("recovery");
        assert_eq!(report.retries, 1);
        let summary = RunSummary::from_trace(team.trace_mut().expect("traced team"));
        assert_eq!(summary.counter("retries"), Some(1));
        assert_eq!(summary.span("driver/retry").map(|s| s.events), Some(1));
        // Two step spans were opened (the failed attempt and the success);
        // only the success carries iters = 1.
        assert_eq!(summary.span("driver/step").map(|s| (s.events, s.iters)), Some((2, 1)));
        assert_eq!(summary.counter("steps"), Some(1));
    }

    #[test]
    fn cfl_guard_rejects_nan_velocity() {
        // f64::max masks NaN, so without the explicit scan this would
        // silently produce the dt_max clamp instead of failing.
        let scenario = Scenario::new(ScenarioKind::LidDrivenCavity, 4);
        let mut stepper = Stepper::new(scenario, quick_config().with_cfl(0.5));
        stepper.state.velocity.as_mut_slice()[17] = f64::NAN;
        match stepper.checked_next_dt() {
            Err(StepError::InvalidDt { umax, .. }) => assert!(umax.is_nan()),
            other => panic!("expected InvalidDt, got {other:?}"),
        }
        assert!(stepper.next_dt().is_nan(), "the infallible preview reports NaN");
        let team = Team::new(1);
        let err = stepper.step_on(&team).expect_err("step must reject the poisoned state");
        assert_eq!(err.phase(), "cfl");
    }

    #[test]
    fn cfl_guard_rejects_infinite_velocity() {
        let scenario = Scenario::new(ScenarioKind::LidDrivenCavity, 4);
        let mut stepper = Stepper::new(scenario, quick_config().with_cfl(0.5));
        stepper.state.velocity.as_mut_slice()[3] = f64::INFINITY;
        match stepper.checked_next_dt() {
            Err(StepError::InvalidDt { umax, .. }) => assert!(umax.is_nan() || umax.is_infinite()),
            other => panic!("expected InvalidDt, got {other:?}"),
        }
    }

    #[test]
    fn cfl_guard_rejects_non_positive_fixed_dt() {
        let scenario = Scenario::new(ScenarioKind::LidDrivenCavity, 4);
        for bad_dt in [0.0, -0.01, f64::NAN, f64::INFINITY] {
            let mut config = quick_config();
            config.cfl = None;
            config.dt = bad_dt;
            let stepper = Stepper::new(scenario.clone(), config);
            match stepper.checked_next_dt() {
                Err(StepError::InvalidDt { dt, .. }) => {
                    assert!(!dt.is_finite() || dt <= 0.0, "rejected dt {dt}")
                }
                other => panic!("dt = {bad_dt}: expected InvalidDt, got {other:?}"),
            }
        }
    }

    #[test]
    fn injected_breakdown_recovers_with_halved_dt() {
        use crate::fault::{FaultKind, FaultPlan};
        let scenario = Scenario::new(ScenarioKind::LidDrivenCavity, 4);
        let team = Team::new(1);
        let mut plain = Stepper::new(scenario.clone(), quick_config());
        let undisturbed = plain.step_on(&team).expect("healthy step");

        let plan = FaultPlan::new(7).with_fault(FaultKind::MomentumBreakdown, 1);
        let mut faulty = Stepper::new(scenario, quick_config().with_fault_plan(plan));
        let report = faulty.step_recovering_on(&team).expect("recovery");
        assert_eq!(report.step, 1);
        assert_eq!(report.retries, 1, "one rollback before the fault was spent");
        assert_eq!(
            report.dt.to_bits(),
            (undisturbed.dt * 0.5).to_bits(),
            "the retry runs at exactly half the CFL Δt"
        );
        // The backoff resets: the next step is back at the full CFL Δt.
        let next = faulty.step_recovering_on(&team).expect("next step");
        assert_eq!(next.retries, 0);
        assert!(next.dt > report.dt);
    }

    #[test]
    fn exhausted_retry_budget_surfaces_a_structured_run_error() {
        use crate::fault::{FaultKind, FaultPlan};
        let scenario = Scenario::new(ScenarioKind::LidDrivenCavity, 4);
        let team = Team::new(1);
        // More scheduled breakdowns than the budget allows attempts.
        let mut plan = FaultPlan::new(7);
        for _ in 0..3 {
            plan = plan.with_fault(FaultKind::MomentumBreakdown, 1);
        }
        let config = quick_config().with_fault_plan(plan).with_max_dt_retries(2);
        let mut stepper = Stepper::new(scenario, config);
        let err = stepper.run_recovering_on(&team, 2).expect_err("budget exhausted");
        assert_eq!(err.step, 1);
        assert_eq!(err.attempts, 3, "1 attempt + 2 retries");
        assert_eq!(err.error.phase(), "momentum");
        assert_eq!(err.time, 0.0);
        let text = err.to_string();
        assert!(text.contains("step 1"), "{text}");
        assert!(text.contains("momentum"), "{text}");
        assert!(text.contains("injected"), "{text}");
        // The rollback left the state untouched.
        assert_eq!(stepper.state().step, 0);
        assert_eq!(stepper.state().time, 0.0);
    }

    #[test]
    fn mg_breakdown_falls_back_to_plain_cg_within_the_step() {
        use crate::fault::{FaultKind, FaultPlan};
        let scenario = Scenario::new(ScenarioKind::LidDrivenCavity, 4);
        let team = Team::new(1);
        let plan = FaultPlan::new(7).with_fault(FaultKind::MultigridBreakdown, 1);
        let mut stepper = Stepper::new(scenario, quick_config().with_fault_plan(plan));
        assert_eq!(stepper.pressure_solver(), PressureSolver::MgCg);
        let report = stepper.step_recovering_on(&team).expect("fallback absorbs the fault");
        assert_eq!(report.retries, 0, "the CG fallback succeeds inside the same attempt");
        assert_eq!(report.poisson_fallbacks, 1);
        assert!(report.poisson_residual < 1e-8, "the fallback solve still converges");
    }

    #[test]
    fn stall_fault_is_bounded_and_trajectory_neutral() {
        use crate::fault::{FaultKind, FaultPlan};
        let scenario = Scenario::new(ScenarioKind::LidDrivenCavity, 4);
        let team = Team::new(1);
        let mut plain = Stepper::new(scenario.clone(), quick_config());
        plain.run_recovering_on(&team, 2).expect("healthy run");

        let plan = FaultPlan::new(3).with_fault(FaultKind::Stall, 2);
        let mut stalled = Stepper::new(scenario, quick_config().with_fault_plan(plan));
        let start = Instant::now();
        stalled.run_recovering_on(&team, 2).expect("a stall is not an error");
        let elapsed = start.elapsed();
        assert!(
            elapsed >= std::time::Duration::from_millis(crate::fault::STALL_MILLIS),
            "the stall actually waited ({elapsed:?})"
        );
        assert_eq!(stalled.fault_plan().map(FaultPlan::pending), Some(0), "stall spent");
        assert_eq!(
            stalled.state().velocity.as_slice()[7].to_bits(),
            plain.state().velocity.as_slice()[7].to_bits(),
            "a stall never enters the trajectory"
        );
        assert_eq!(stalled.state().time.to_bits(), plain.state().time.to_bits());
    }

    #[test]
    fn panic_fault_unwinds_and_is_catchable() {
        use crate::fault::{FaultKind, FaultPlan};
        let scenario = Scenario::new(ScenarioKind::LidDrivenCavity, 4);
        let team = Team::new(1);
        let plan = FaultPlan::new(3).with_fault(FaultKind::Panic, 1);
        let mut stepper = Stepper::new(scenario, quick_config().with_fault_plan(plan));
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            stepper.step_recovering_on(&team)
        }));
        let payload = caught.expect_err("the injected panic must unwind");
        let message = payload.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(message.contains("injected worker panic at step 1"), "{message}");
        // The fault is spent: the supervisor's retry (same stepper or a
        // rebuilt one carrying the plan) completes.
        assert_eq!(stepper.fault_plan().map(FaultPlan::pending), Some(0));
        stepper.step_recovering_on(&team).expect("retry after the contained panic");
        assert_eq!(stepper.state().step, 1);
    }

    #[test]
    fn sliced_runs_replay_the_uninterrupted_trajectory() {
        let scenario = Scenario::new(ScenarioKind::LidDrivenCavity, 4);
        let team = Team::new(1);
        let mut oracle = Stepper::new(scenario.clone(), quick_config());
        oracle.run_recovering_on(&team, 5).expect("uninterrupted run");

        let mut sliced = Stepper::new(scenario, quick_config());
        let mut slices = 0;
        loop {
            let slice = sliced.run_slice_on(&team, 5, 2, None).expect("slice");
            slices += 1;
            match slice.end {
                SliceEnd::Completed => break,
                SliceEnd::QuotaExhausted => assert_eq!(slice.reports.len(), 2),
                SliceEnd::DeadlineExceeded { .. } => panic!("no deadline was set"),
            }
        }
        assert_eq!(slices, 3, "5 steps in quota-2 slices: 2 + 2 + 1");
        assert_eq!(sliced.state().step, oracle.state().step);
        for (a, b) in
            sliced.state().velocity.as_slice().iter().zip(oracle.state().velocity.as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits(), "slicing never enters the trajectory");
        }
    }

    #[test]
    fn slice_deadline_reports_the_slow_step() {
        use crate::fault::{FaultKind, FaultPlan};
        let scenario = Scenario::new(ScenarioKind::LidDrivenCavity, 4);
        let team = Team::new(1);
        let plan = FaultPlan::new(3).with_fault(FaultKind::Stall, 2);
        let mut stepper = Stepper::new(scenario, quick_config().with_fault_plan(plan));
        let deadline = std::time::Duration::from_millis(crate::fault::STALL_MILLIS / 2);
        let slice = stepper.run_slice_on(&team, 4, 4, Some(deadline)).expect("slice");
        match slice.end {
            SliceEnd::DeadlineExceeded { step, elapsed } => {
                assert_eq!(step, 2, "the stalled step is the one reported");
                assert!(elapsed > deadline.as_secs_f64());
            }
            other => panic!("expected a blown deadline, got {other:?}"),
        }
        assert_eq!(slice.reports.len(), 2, "the slice stopped right after the slow step");
    }

    #[test]
    fn cfl_controller_tracks_the_velocity_scale() {
        let scenario = Scenario::new(ScenarioKind::LidDrivenCavity, 4);
        let stepper = Stepper::new(scenario.clone(), quick_config().with_cfl(0.5));
        // umax = 1 (the lid): dt = 0.5 · h = 0.5/4, clamped by dt_max = 0.1.
        assert!((stepper.next_dt() - 0.1).abs() < 1e-12, "dt {}", stepper.next_dt());
        let fixed = Stepper::new(scenario, quick_config().with_fixed_dt(0.025));
        assert_eq!(fixed.next_dt(), 0.025);
    }

    #[test]
    fn trajectory_is_bitwise_reproducible_across_thread_counts() {
        let scenario = Scenario::new(ScenarioKind::TaylorGreenVortex, 4);
        let mut reference: Option<SimState> = None;
        for threads in [1usize, 2, 3] {
            let mut stepper = Stepper::new(scenario.clone(), quick_config());
            let team = Team::new(threads);
            stepper.run_on(&team, 2).expect("run");
            let state = stepper.state();
            match &reference {
                None => reference = Some(state.clone()),
                Some(oracle) => {
                    assert_eq!(oracle.time.to_bits(), state.time.to_bits(), "t={threads}");
                    for (a, b) in oracle.velocity.as_slice().iter().zip(state.velocity.as_slice()) {
                        assert_eq!(a.to_bits(), b.to_bits(), "velocity at {threads} threads");
                    }
                    for (a, b) in oracle.pressure.as_slice().iter().zip(state.pressure.as_slice()) {
                        assert_eq!(a.to_bits(), b.to_bits(), "pressure at {threads} threads");
                    }
                }
            }
        }
    }

    #[test]
    fn momentum_paths_produce_the_same_trajectory() {
        let scenario = Scenario::new(ScenarioKind::LidDrivenCavity, 4);
        let team = Team::new(2);
        let mut batched = Stepper::new(scenario.clone(), quick_config());
        batched.run_on(&team, 2).expect("batched run");
        let mut sequential =
            Stepper::new(scenario, quick_config().with_momentum_path(MomentumPath::Sequential));
        sequential.run_on(&team, 2).expect("sequential run");
        for (a, b) in
            batched.state().velocity.as_slice().iter().zip(sequential.state().velocity.as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn multigrid_is_the_default_pressure_path_and_cuts_iterations() {
        let scenario = Scenario::new(ScenarioKind::LidDrivenCavity, 8);
        let team = Team::new(1);
        let mut mgcg = Stepper::new(scenario.clone(), quick_config());
        assert_eq!(mgcg.pressure_solver(), PressureSolver::MgCg);
        assert_eq!(mgcg.multigrid_levels(), Some(vec![729, 125, 27]));
        let mut cg =
            Stepper::new(scenario, quick_config().with_pressure_solver(PressureSolver::Cg));
        assert_eq!(cg.pressure_solver(), PressureSolver::Cg);
        let mg_report = mgcg.step_on(&team).expect("mgcg step");
        let cg_report = cg.step_on(&team).expect("cg step");
        assert!(
            mg_report.poisson_iterations < cg_report.poisson_iterations,
            "MG-CG {} vs CG {} iterations",
            mg_report.poisson_iterations,
            cg_report.poisson_iterations
        );
        // Both converge to the same tolerance: the physics diagnostics agree
        // to solver precision.
        assert!((mg_report.kinetic_energy - cg_report.kinetic_energy).abs() < 1e-8);
        assert!((mg_report.divergence_post - cg_report.divergence_post).abs() < 1e-8);
    }

    #[test]
    fn channel_scenario_steps_with_outflow_pins() {
        let scenario = Scenario::new(ScenarioKind::Channel, 3);
        let mut stepper = Stepper::new(scenario, quick_config());
        let team = Team::new(2);
        let report = stepper.step_on(&team).expect("channel step");
        assert!(report.divergence_post.is_finite());
        // The pinned outflow pressure stays exactly zero.
        let mesh = stepper.mesh().clone();
        for node in 0..mesh.num_nodes() {
            if mesh.boundary_tag(node) == lv_mesh::BoundaryTag::Outflow {
                assert_eq!(stepper.state().pressure.value(node), 0.0);
            }
        }
    }
}
