//! The Chorin fractional-step time integrator.
//!
//! One [`Stepper::step_on`] call advances the state through the three
//! sub-steps of a pressure-projection scheme, all on **one** shared
//! [`Team`]:
//!
//! 1. **Predictor** — the existing mini-app machinery: colored parallel
//!    assembly of the semi-implicit momentum system, the weak pressure
//!    gradient `−∫ N_a ∂p/∂x_i` of the current pressure added to the RHS,
//!    Dirichlet rows applied, and the (batched or sequential) pooled
//!    BiCGSTAB momentum solve for the velocity increment → `u*`.
//! 2. **Pressure Poisson** — `L φ = −(ρ/Δt) d(u*)` with the mesh-true
//!    Laplacian assembled by [`lv_kernel::PressureOperators`] (symmetrically
//!    pinned per scenario), solved with pooled CG — by default
//!    preconditioned by the geometric-multigrid V-cycle when the mesh is a
//!    structured box lattice ([`PressureSolver::MgCg`]), plain
//!    Jacobi-preconditioned CG otherwise.
//! 3. **Correction** — `u ← u* − (Δt/ρ) M⁻¹ g(φ)` with the lumped-mass
//!    nodal gradient, re-imposition of the scenario's velocity BCs, and the
//!    incremental pressure update `p ← p + φ`.
//!
//! Every kernel in the chain (colored sweeps, pooled Krylov, fixed-order
//! diagnostics) is bitwise reproducible across thread counts, so a whole
//! trajectory is **bitwise identical for threads ∈ {1, 2, 4, …}** — which is
//! also what makes checkpoint/restart exactly resumable: the state is
//! `(step, time, velocity, pressure)` and the step map is a pure function
//! of it.
//!
//! Δt is either fixed or CFL-adaptive (`Δt = clamp(C·h/‖u‖_∞)`), recomputed
//! from the state at the start of every step — deterministic, and therefore
//! restart-safe without storing it.

use crate::scenario::Scenario;
use lv_kernel::{
    build_pressure_multigrid, solve_momentum_on, weak_divergence_vector_norm, ElementWorkspace,
    KernelConfig, MomentumPath, NastinAssembly, OptLevel, PressureOperators,
};
use lv_mesh::{Field, Mesh, VectorField};
use lv_runtime::Team;
use lv_solver::{
    conjugate_gradient_on, mg_preconditioned_cg_on, CsrMatrix, GeometricMultigrid,
    MultigridOptions, SolveOptions, SolverError,
};
use std::time::Instant;

/// Number of spatial dimensions (velocity components per node).
const NDIME: usize = lv_kernel::NDIME;

/// Which Krylov setup solves the pressure-Poisson system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PressureSolver {
    /// Jacobi-preconditioned Conjugate Gradient (the pre-multigrid default).
    Cg,
    /// Conjugate Gradient preconditioned by the geometric-multigrid V-cycle
    /// ([`lv_kernel::build_pressure_multigrid`]).  Falls back to [`Cg`]
    /// (`PressureSolver::Cg`) when the mesh is not a recognisable structured
    /// box lattice; [`Stepper::pressure_solver`] reports the path actually
    /// taken.
    MgCg,
}

impl PressureSolver {
    /// Stable CLI/report name (`cg` / `mgcg`).
    pub fn name(&self) -> &'static str {
        match self {
            PressureSolver::Cg => "cg",
            PressureSolver::MgCg => "mgcg",
        }
    }

    /// Parses a CLI name (the inverse of [`name`](Self::name)).
    pub fn from_name(name: &str) -> Option<PressureSolver> {
        match name {
            "cg" => Some(PressureSolver::Cg),
            "mgcg" => Some(PressureSolver::MgCg),
            _ => None,
        }
    }
}

/// Configuration of a [`Stepper`] run.
#[derive(Debug, Clone, Copy)]
pub struct StepperConfig {
    /// `VECTOR_SIZE` of the assembly and projection sweeps.
    pub vector_size: usize,
    /// Scheduling of the three momentum-component solves.
    pub momentum_path: MomentumPath,
    /// Options of the momentum BiCGSTAB solve.
    pub momentum_options: SolveOptions,
    /// Options of the pressure-Poisson CG solve.
    pub poisson_options: SolveOptions,
    /// Which solver setup handles the pressure-Poisson system.
    pub pressure_solver: PressureSolver,
    /// CFL number for adaptive time stepping (`Δt = C·h/‖u‖_∞`, clamped to
    /// `[dt_min, dt_max]`); `None` runs at the fixed `dt`.
    pub cfl: Option<f64>,
    /// Fixed time step (also the fallback when the CFL clamp saturates).
    pub dt: f64,
    /// Lower Δt clamp of the CFL controller.
    pub dt_min: f64,
    /// Upper Δt clamp of the CFL controller.
    pub dt_max: f64,
    /// Projection sweeps per step.  Each sweep solves one Poisson system and
    /// applies one lumped-mass correction; because the correction is an
    /// *approximate* projection (the FE Laplacian `L` is a consistent but
    /// not exact stand-in for the discrete composition `D·M⁻¹·G`), the
    /// sweeps act as Richardson iterations on the divergence constraint,
    /// contracting the weak divergence by ~2× each.  1 is the classic
    /// scheme; the default 3 drives the predictor's discrete divergence
    /// down by an order of magnitude.
    pub projection_sweeps: usize,
}

impl Default for StepperConfig {
    fn default() -> Self {
        StepperConfig {
            vector_size: 128,
            momentum_path: MomentumPath::Batched,
            momentum_options: SolveOptions {
                max_iterations: 2000,
                tolerance: 1e-10,
                ..Default::default()
            },
            poisson_options: SolveOptions {
                max_iterations: 4000,
                tolerance: 1e-10,
                ..Default::default()
            },
            pressure_solver: PressureSolver::MgCg,
            cfl: Some(0.4),
            dt: 0.02,
            dt_min: 1e-4,
            dt_max: 0.1,
            projection_sweeps: 3,
        }
    }
}

impl StepperConfig {
    /// Builder: fixed time step (disables the CFL controller).
    pub fn with_fixed_dt(mut self, dt: f64) -> Self {
        assert!(dt > 0.0, "time step must be positive");
        self.cfl = None;
        self.dt = dt;
        self
    }

    /// Builder: CFL-adaptive time stepping with the given Courant number.
    pub fn with_cfl(mut self, cfl: f64) -> Self {
        assert!(cfl > 0.0, "CFL number must be positive");
        self.cfl = Some(cfl);
        self
    }

    /// Builder: momentum scheduling path.
    pub fn with_momentum_path(mut self, path: MomentumPath) -> Self {
        self.momentum_path = path;
        self
    }

    /// Builder: `VECTOR_SIZE` of the sweeps.
    pub fn with_vector_size(mut self, vector_size: usize) -> Self {
        assert!(vector_size > 0, "VECTOR_SIZE must be positive");
        self.vector_size = vector_size;
        self
    }

    /// Builder: pressure-Poisson solver setup.
    pub fn with_pressure_solver(mut self, solver: PressureSolver) -> Self {
        self.pressure_solver = solver;
        self
    }
}

/// The complete simulation state: everything a checkpoint stores and a
/// restart needs.
#[derive(Debug, Clone)]
pub struct SimState {
    /// Completed steps.
    pub step: u64,
    /// Simulation time.
    pub time: f64,
    /// Nodal velocity.
    pub velocity: VectorField,
    /// Nodal pressure.
    pub pressure: Field,
}

/// Wall-clock breakdown of one step, in seconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct StepTimings {
    /// Momentum assembly + pressure force + Dirichlet rows.
    pub assembly: f64,
    /// Momentum (predictor) solve.
    pub momentum: f64,
    /// Weak divergence + pressure-Poisson CG solve(s).
    pub poisson: f64,
    /// Weak gradient, velocity correction, BCs and pressure update.
    pub correction: f64,
}

impl StepTimings {
    /// Total step wall-clock.
    pub fn total(&self) -> f64 {
        self.assembly + self.momentum + self.poisson + self.correction
    }

    /// Accumulates another step's timings (used by the bench).
    pub fn accumulate(&mut self, other: &StepTimings) {
        self.assembly += other.assembly;
        self.momentum += other.momentum;
        self.poisson += other.poisson;
        self.correction += other.correction;
    }
}

/// Diagnostics and timings of one completed step.
#[derive(Debug, Clone)]
pub struct StepReport {
    /// Step index after the step (1-based).
    pub step: u64,
    /// Simulation time after the step.
    pub time: f64,
    /// Δt used by the step.
    pub dt: f64,
    /// Total momentum (BiCGSTAB) iterations across the three components.
    pub momentum_iterations: usize,
    /// Worst final relative residual of the momentum components.
    pub momentum_residual: f64,
    /// Total pressure-Poisson CG iterations across the projection sweeps.
    pub poisson_iterations: usize,
    /// Worst final relative residual of the Poisson solves.
    pub poisson_residual: f64,
    /// Discrete divergence `‖d(u*)‖₂` of the predictor velocity (the weak
    /// divergence vector `d_a = ∫ N_a ∇·u` the projection drives to zero).
    pub divergence_pre: f64,
    /// Discrete divergence `‖d(u)‖₂` after the projection correction.
    pub divergence_post: f64,
    /// Kinetic energy `½ρ∫|u|²` after the step.
    pub kinetic_energy: f64,
    /// Wall-clock breakdown.
    pub timings: StepTimings,
}

/// Why a step failed.
#[derive(Debug, Clone, PartialEq)]
pub enum StepError {
    /// The momentum (predictor) solve failed.
    Momentum(SolverError),
    /// The pressure-Poisson solve failed.
    Poisson(SolverError),
}

impl std::fmt::Display for StepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StepError::Momentum(e) => write!(f, "momentum solve failed: {e:?}"),
            StepError::Poisson(e) => write!(f, "pressure-Poisson solve failed: {e:?}"),
        }
    }
}

impl std::error::Error for StepError {}

/// The fractional-step simulation driver: owns the assembled operators, the
/// reusable work buffers and the evolving [`SimState`].
#[derive(Debug)]
pub struct Stepper {
    scenario: Scenario,
    config: StepperConfig,
    assembly: NastinAssembly,
    operators: PressureOperators,
    laplacian: CsrMatrix,
    multigrid: Option<GeometricMultigrid>,
    pins: Vec<usize>,
    h_char: f64,
    state: SimState,
    matrix: CsrMatrix,
    rhs: Vec<f64>,
    grad: Vec<f64>,
    div: Vec<f64>,
    poisson_rhs: Vec<f64>,
    workspaces: Vec<ElementWorkspace>,
}

impl Stepper {
    /// Builds a stepper for `scenario` from its initial state.
    pub fn new(scenario: Scenario, config: StepperConfig) -> Self {
        let mesh = scenario.build_mesh();
        Self::with_mesh(scenario, config, mesh)
    }

    /// Builds a stepper on a caller-provided mesh (e.g. a renumbered one —
    /// the scenario only supplies physics, BCs and initial fields).
    pub fn with_mesh(scenario: Scenario, config: StepperConfig, mesh: Mesh) -> Self {
        let (velocity, pressure) = scenario.initial_state(&mesh);
        let state = SimState { step: 0, time: 0.0, velocity, pressure };
        Self::from_state(scenario, config, mesh, state)
    }

    /// Builds a stepper resuming from an existing state (the restart path;
    /// see [`crate::checkpoint`]).
    ///
    /// # Panics
    /// Panics if the state's field sizes do not match the mesh.
    pub fn from_state(
        scenario: Scenario,
        config: StepperConfig,
        mesh: Mesh,
        state: SimState,
    ) -> Self {
        assert_eq!(
            state.velocity.num_nodes(),
            mesh.num_nodes(),
            "restart velocity does not match the mesh"
        );
        assert_eq!(
            state.pressure.len(),
            mesh.num_nodes(),
            "restart pressure does not match the mesh"
        );
        let kernel_config = KernelConfig::new(config.vector_size, OptLevel::Vec1)
            .with_viscosity(scenario.viscosity)
            .with_density(scenario.density)
            .with_dt(config.dt);
        let assembly = NastinAssembly::new(mesh.clone(), kernel_config);
        let operators = PressureOperators::new(&mesh, config.vector_size);
        let pins = scenario.pressure_pins(&mesh);
        let mut laplacian = operators.assemble_laplacian();
        laplacian.pin_rows_symmetric(&pins);
        debug_assert!(laplacian.is_symmetric(1e-12), "pinned pressure Laplacian must stay SPD");
        // The V-cycle hierarchy is a pure function of the mesh and the
        // pinned Laplacian, so a restarted stepper rebuilds it identically
        // (bitwise) and trajectories stay exactly resumable.
        let multigrid = match config.pressure_solver {
            PressureSolver::MgCg => {
                build_pressure_multigrid(&mesh, &laplacian, &MultigridOptions::default())
            }
            PressureSolver::Cg => None,
        };
        let n = mesh.num_nodes();
        let matrix = assembly.new_matrix();
        let h_char = mesh.characteristic_length();
        Stepper {
            scenario,
            config,
            assembly,
            operators,
            laplacian,
            multigrid,
            pins,
            h_char,
            state,
            matrix,
            rhs: vec![0.0; NDIME * n],
            grad: vec![0.0; NDIME * n],
            div: vec![0.0; n],
            poisson_rhs: vec![0.0; n],
            workspaces: Vec::new(),
        }
    }

    /// The scenario this stepper runs.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The stepper configuration.
    pub fn config(&self) -> &StepperConfig {
        &self.config
    }

    /// The mesh.
    pub fn mesh(&self) -> &Mesh {
        self.assembly.mesh()
    }

    /// The current simulation state.
    pub fn state(&self) -> &SimState {
        &self.state
    }

    /// The projection operators (for external diagnostics).
    pub fn operators(&self) -> &PressureOperators {
        &self.operators
    }

    /// The pressure-Poisson path actually in use: [`PressureSolver::MgCg`]
    /// only when the configured multigrid hierarchy could be built for this
    /// mesh, [`PressureSolver::Cg`] otherwise.
    pub fn pressure_solver(&self) -> PressureSolver {
        if self.multigrid.is_some() {
            PressureSolver::MgCg
        } else {
            PressureSolver::Cg
        }
    }

    /// Rows per multigrid level (finest first), when the V-cycle is active.
    pub fn multigrid_levels(&self) -> Option<Vec<usize>> {
        self.multigrid.as_ref().map(GeometricMultigrid::level_rows)
    }

    /// The Δt the next step will use, given the current state.
    pub fn next_dt(&self) -> f64 {
        match self.config.cfl {
            Some(cfl) => {
                let umax = self.state.velocity.max_magnitude().max(1e-9);
                (cfl * self.h_char / umax).clamp(self.config.dt_min, self.config.dt_max)
            }
            None => self.config.dt,
        }
    }

    /// Kinetic energy of the current state.
    pub fn kinetic_energy(&self) -> f64 {
        self.operators.kinetic_energy(&self.state.velocity, self.scenario.density)
    }

    /// Continuous `‖∇·u‖_{L2}` of the current state (the pointwise
    /// divergence of the Q1 interpolant; see
    /// [`PressureOperators::weak_divergence_norm`] for the discrete measure
    /// the projection controls).
    pub fn divergence_norm(&self) -> f64 {
        self.operators.divergence_l2(&self.state.velocity)
    }

    /// Discrete divergence `‖d(u)‖₂` of the current state.
    pub fn weak_divergence_norm(&self) -> f64 {
        self.operators.weak_divergence_norm(&self.state.velocity)
    }

    /// Continuous L2 error against the scenario's analytic velocity at the
    /// current time, for scenarios that have one.
    pub fn analytic_velocity_error(&self) -> Option<f64> {
        let time = self.state.time;
        // Probe whether the scenario has an analytic solution at all.
        self.scenario.analytic_velocity(lv_mesh::Vec3::ZERO, time)?;
        let scenario = &self.scenario;
        Some(self.operators.velocity_l2_error(&self.state.velocity, |p| {
            scenario.analytic_velocity(p, time).expect("analytic solution probed above").to_array()
        }))
    }

    fn ensure_workspaces(&mut self, threads: usize) {
        while self.workspaces.len() < threads {
            self.workspaces.push(ElementWorkspace::new(self.config.vector_size));
        }
    }

    /// Advances the state by one fractional step on the caller's team.
    ///
    /// # Errors
    /// Returns [`StepError`] if the momentum or Poisson solve fails to
    /// converge; the state is left unchanged in that case only up to the
    /// failed sub-step (a failed run should be abandoned, not resumed).
    pub fn step_on(&mut self, team: &Team) -> Result<StepReport, StepError> {
        let mut timings = StepTimings::default();
        let dt = self.next_dt();
        self.assembly.set_dt(dt);
        let rho = self.scenario.density;
        let t_new = self.state.time + dt;
        self.ensure_workspaces(team.num_threads());

        // --- 1. predictor: assemble + pressure force + Dirichlet ---------
        let t0 = Instant::now();
        self.assembly.assemble_parallel_into_on(
            team,
            &self.state.velocity,
            &self.state.pressure,
            &mut self.matrix,
            &mut self.rhs,
            &mut self.workspaces,
        );
        // Momentum RHS gets the −∇p force of the current pressure: the
        // mini-app assembles only convection/viscous/mass terms, the weak
        // pressure gradient closes the equation.
        self.operators.weak_gradient_on(team, self.state.pressure.as_slice(), &mut self.grad);
        for (r, g) in self.rhs.iter_mut().zip(&self.grad) {
            *r -= g;
        }
        self.assembly.apply_dirichlet(&mut self.matrix, &mut self.rhs);
        timings.assembly = t0.elapsed().as_secs_f64();

        // --- momentum solve → u* ------------------------------------------
        let t0 = Instant::now();
        let solve = solve_momentum_on(
            team,
            &self.matrix,
            &self.rhs,
            &self.config.momentum_options,
            self.config.momentum_path,
        )
        .map_err(StepError::Momentum)?;
        for (v, d) in self.state.velocity.as_mut_slice().iter_mut().zip(&solve.increment) {
            *v += d;
        }
        self.scenario.apply_velocity_bcs(self.assembly.mesh(), &mut self.state.velocity, t_new);
        timings.momentum = t0.elapsed().as_secs_f64();

        // --- 2+3. projection sweeps: Poisson solve + correction -----------
        let mut poisson_iterations = 0;
        let mut poisson_residual = 0.0f64;
        let mut divergence_pre = 0.0f64;
        let scale = -rho / dt;
        let correction = dt / rho;
        for sweep in 0..self.config.projection_sweeps.max(1) {
            let t0 = Instant::now();
            self.operators.weak_divergence_on(team, &self.state.velocity, &mut self.div);
            if sweep == 0 {
                // ‖d(u*)‖₂ of the raw predictor field, read off the first
                // sweep's divergence vector — no extra sweep over the mesh.
                divergence_pre = weak_divergence_vector_norm(&self.div);
            }
            for (b, d) in self.poisson_rhs.iter_mut().zip(&self.div) {
                *b = scale * d;
            }
            for &pin in &self.pins {
                self.poisson_rhs[pin] = 0.0;
            }
            let phi = match &mut self.multigrid {
                Some(mg) => mg_preconditioned_cg_on(
                    team,
                    &self.laplacian,
                    mg,
                    &self.poisson_rhs,
                    &self.config.poisson_options,
                ),
                None => conjugate_gradient_on(
                    team,
                    &self.laplacian,
                    &self.poisson_rhs,
                    &self.config.poisson_options,
                ),
            }
            .map_err(StepError::Poisson)?;
            poisson_iterations += phi.iterations;
            poisson_residual = poisson_residual.max(phi.final_residual());
            timings.poisson += t0.elapsed().as_secs_f64();

            let t0 = Instant::now();
            self.operators.weak_gradient_on(team, &phi.solution, &mut self.grad);
            let vel = self.state.velocity.as_mut_slice();
            for (node, &mass) in self.operators.lumped_mass().iter().enumerate() {
                let f = correction / mass;
                for i in 0..NDIME {
                    vel[NDIME * node + i] -= f * self.grad[NDIME * node + i];
                }
            }
            self.scenario.apply_velocity_bcs(self.assembly.mesh(), &mut self.state.velocity, t_new);
            for (p, f) in self.state.pressure.as_mut_slice().iter_mut().zip(&phi.solution) {
                *p += f;
            }
            timings.correction += t0.elapsed().as_secs_f64();
        }
        self.operators.weak_divergence_on(team, &self.state.velocity, &mut self.div);
        let divergence_post = weak_divergence_vector_norm(&self.div);

        self.state.step += 1;
        self.state.time = t_new;
        Ok(StepReport {
            step: self.state.step,
            time: self.state.time,
            dt,
            momentum_iterations: solve.total_iterations(),
            momentum_residual: solve.worst_residual,
            poisson_iterations,
            poisson_residual,
            divergence_pre,
            divergence_post,
            kinetic_energy: self.kinetic_energy(),
            timings,
        })
    }

    /// Runs `steps` fractional steps, returning the per-step reports.
    ///
    /// # Errors
    /// Stops at the first failed step (see [`Stepper::step_on`]).
    pub fn run_on(&mut self, team: &Team, steps: usize) -> Result<Vec<StepReport>, StepError> {
        let mut reports = Vec::with_capacity(steps);
        for _ in 0..steps {
            reports.push(self.step_on(team)?);
        }
        Ok(reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioKind;

    fn quick_config() -> StepperConfig {
        StepperConfig::default().with_vector_size(32)
    }

    #[test]
    fn cavity_step_produces_flow_and_reduces_divergence() {
        let scenario = Scenario::new(ScenarioKind::LidDrivenCavity, 5);
        let mut stepper = Stepper::new(scenario, quick_config());
        assert_eq!(stepper.state().step, 0);
        assert!(stepper.kinetic_energy() > 0.0, "lid nodes already move");
        let team = Team::new(1);
        let report = stepper.step_on(&team).expect("step");
        assert_eq!(report.step, 1);
        assert!(report.dt > 0.0 && report.time > 0.0);
        assert!(report.momentum_iterations > 0);
        assert!(report.momentum_residual < 1e-8);
        assert!(report.poisson_iterations > 0);
        assert!(report.poisson_residual < 1e-8);
        // The projection must reduce the divergence of the predictor field.
        assert!(report.divergence_post < report.divergence_pre);
        assert!(report.kinetic_energy > 0.0);
        assert!(report.timings.total() > 0.0);
        // Pressure is no longer the zero spectator field.
        assert!(stepper.state().pressure.max_abs() > 0.0);
        assert!(stepper.analytic_velocity_error().is_none());
    }

    #[test]
    fn cfl_controller_tracks_the_velocity_scale() {
        let scenario = Scenario::new(ScenarioKind::LidDrivenCavity, 4);
        let stepper = Stepper::new(scenario.clone(), quick_config().with_cfl(0.5));
        // umax = 1 (the lid): dt = 0.5 · h = 0.5/4, clamped by dt_max = 0.1.
        assert!((stepper.next_dt() - 0.1).abs() < 1e-12, "dt {}", stepper.next_dt());
        let fixed = Stepper::new(scenario, quick_config().with_fixed_dt(0.025));
        assert_eq!(fixed.next_dt(), 0.025);
    }

    #[test]
    fn trajectory_is_bitwise_reproducible_across_thread_counts() {
        let scenario = Scenario::new(ScenarioKind::TaylorGreenVortex, 4);
        let mut reference: Option<SimState> = None;
        for threads in [1usize, 2, 3] {
            let mut stepper = Stepper::new(scenario.clone(), quick_config());
            let team = Team::new(threads);
            stepper.run_on(&team, 2).expect("run");
            let state = stepper.state();
            match &reference {
                None => reference = Some(state.clone()),
                Some(oracle) => {
                    assert_eq!(oracle.time.to_bits(), state.time.to_bits(), "t={threads}");
                    for (a, b) in oracle.velocity.as_slice().iter().zip(state.velocity.as_slice()) {
                        assert_eq!(a.to_bits(), b.to_bits(), "velocity at {threads} threads");
                    }
                    for (a, b) in oracle.pressure.as_slice().iter().zip(state.pressure.as_slice()) {
                        assert_eq!(a.to_bits(), b.to_bits(), "pressure at {threads} threads");
                    }
                }
            }
        }
    }

    #[test]
    fn momentum_paths_produce_the_same_trajectory() {
        let scenario = Scenario::new(ScenarioKind::LidDrivenCavity, 4);
        let team = Team::new(2);
        let mut batched = Stepper::new(scenario.clone(), quick_config());
        batched.run_on(&team, 2).expect("batched run");
        let mut sequential =
            Stepper::new(scenario, quick_config().with_momentum_path(MomentumPath::Sequential));
        sequential.run_on(&team, 2).expect("sequential run");
        for (a, b) in
            batched.state().velocity.as_slice().iter().zip(sequential.state().velocity.as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn multigrid_is_the_default_pressure_path_and_cuts_iterations() {
        let scenario = Scenario::new(ScenarioKind::LidDrivenCavity, 8);
        let team = Team::new(1);
        let mut mgcg = Stepper::new(scenario.clone(), quick_config());
        assert_eq!(mgcg.pressure_solver(), PressureSolver::MgCg);
        assert_eq!(mgcg.multigrid_levels(), Some(vec![729, 125, 27]));
        let mut cg =
            Stepper::new(scenario, quick_config().with_pressure_solver(PressureSolver::Cg));
        assert_eq!(cg.pressure_solver(), PressureSolver::Cg);
        let mg_report = mgcg.step_on(&team).expect("mgcg step");
        let cg_report = cg.step_on(&team).expect("cg step");
        assert!(
            mg_report.poisson_iterations < cg_report.poisson_iterations,
            "MG-CG {} vs CG {} iterations",
            mg_report.poisson_iterations,
            cg_report.poisson_iterations
        );
        // Both converge to the same tolerance: the physics diagnostics agree
        // to solver precision.
        assert!((mg_report.kinetic_energy - cg_report.kinetic_energy).abs() < 1e-8);
        assert!((mg_report.divergence_post - cg_report.divergence_post).abs() < 1e-8);
    }

    #[test]
    fn channel_scenario_steps_with_outflow_pins() {
        let scenario = Scenario::new(ScenarioKind::Channel, 3);
        let mut stepper = Stepper::new(scenario, quick_config());
        let team = Team::new(2);
        let report = stepper.step_on(&team).expect("channel step");
        assert!(report.divergence_post.is_finite());
        // The pinned outflow pressure stays exactly zero.
        let mesh = stepper.mesh().clone();
        for node in 0..mesh.num_nodes() {
            if mesh.boundary_tag(node) == lv_mesh::BoundaryTag::Outflow {
                assert_eq!(stepper.state().pressure.value(node), 0.0);
            }
        }
    }
}
