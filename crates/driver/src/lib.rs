//! # lv-driver
//!
//! The **fractional-step simulation driver**: the subsystem that turns the
//! repo's kernels — colored parallel assembly (`lv-kernel`), pooled/batched
//! Krylov solvers (`lv-solver`), the shared worker-pool runtime
//! (`lv-runtime`) and the mesh-true projection operators
//! ([`lv_kernel::projection`]) — into an end-to-end incompressible
//! Navier–Stokes solver.  Until this crate, every example stopped at the
//! momentum predictor with pressure identically zero; the driver closes the
//! loop with a Chorin pressure-projection step.
//!
//! * [`stepper`] — the [`Stepper`]: predictor → pressure Poisson →
//!   correction, all on one shared [`lv_runtime::Team`], CFL-adaptive Δt,
//!   per-step diagnostics, bitwise reproducible across thread counts;
//! * [`scenario`] — the [`Scenario`] registry: lid-driven cavity, channel,
//!   Taylor–Green vortex (with analytic error norms) and a decaying shear
//!   layer, each with its own BCs, initial fields and pressure pins;
//! * [`checkpoint`] — binary checkpoint/restart with bitwise-identical
//!   resumption, plus the [`CheckpointRing`] that rotates the last K
//!   generations and falls back past corrupt ones on load;
//! * [`fault`] — the deterministic [`FaultPlan`] injection harness that
//!   exercises every recovery path (solver breakdowns, NaN-poisoned RHS,
//!   corrupted checkpoints) reproducibly in tests;
//! * [`bench`] — the wall-clock engine behind `BENCH_driver.json`.

#![warn(missing_docs)]

pub mod bench;
pub mod checkpoint;
pub mod fault;
pub mod scenario;
pub mod stepper;

pub use bench::{
    driver_bench_to_json, measure_pressure_solvers, pressure_solver_cases_to_json,
    DriverBenchReport, DriverMeasurement, PressureSolverCase,
};
pub use checkpoint::{
    load_checkpoint, load_checkpoint_traced, save_checkpoint, save_checkpoint_traced, Checkpoint,
    CheckpointRing, RingRecovery,
};
pub use fault::{FaultKind, FaultPlan, STALL_MILLIS};
pub use scenario::{taylor_green_velocity, Scenario, ScenarioKind};
pub use stepper::{
    PressureSolver, RunError, SimState, SliceEnd, SliceReport, StepError, StepReport, StepTimings,
    Stepper, StepperConfig,
};
