//! The scenario registry: every flow configuration the fractional-step
//! driver can run, with per-scenario mesh generation, initial fields,
//! (possibly time-dependent) velocity boundary conditions, pressure pin
//! nodes and — where one exists — the analytic reference solution.
//!
//! A scenario is deliberately *data*, not a trait object: the registry is a
//! closed set the examples can enumerate (`Scenario::registry()`), a
//! checkpoint can name (`ScenarioKind::name`), and a CLI can parse
//! (`ScenarioKind::from_name`).

use lv_mesh::{BoundaryTag, BoxMeshBuilder, ChannelMeshBuilder, Field, Mesh, Vec3, VectorField};
use std::f64::consts::PI;

/// The flow configurations the driver knows how to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Lid-driven cavity: enclosed box, unit-velocity lid on the top face.
    LidDrivenCavity,
    /// Channel flow: elongated box, uniform inflow at x-min, natural
    /// outflow at x-max.
    Channel,
    /// Decaying Taylor–Green vortex (2-D solution extruded in z): the
    /// analytic-error workload — `u` and the viscous decay rate are known
    /// in closed form.
    TaylorGreenVortex,
    /// Decaying shear layer: a perturbed tanh profile whose kinetic energy
    /// decays under viscosity.
    ShearLayer,
}

impl ScenarioKind {
    /// Every registered scenario kind, in registry order.
    pub const ALL: [ScenarioKind; 4] = [
        ScenarioKind::LidDrivenCavity,
        ScenarioKind::Channel,
        ScenarioKind::TaylorGreenVortex,
        ScenarioKind::ShearLayer,
    ];

    /// The registry name (also the checkpoint identity and the CLI
    /// argument).
    pub const fn name(self) -> &'static str {
        match self {
            ScenarioKind::LidDrivenCavity => "cavity",
            ScenarioKind::Channel => "channel",
            ScenarioKind::TaylorGreenVortex => "taylor-green",
            ScenarioKind::ShearLayer => "shear-layer",
        }
    }

    /// One-line description for `--list`-style output.
    pub const fn describe(self) -> &'static str {
        match self {
            ScenarioKind::LidDrivenCavity => {
                "enclosed box, moving lid; recirculating vortex (KE, divergence diagnostics)"
            }
            ScenarioKind::Channel => {
                "inflow/outflow duct, 4:1 aspect; pressure zeroed on the outflow plane"
            }
            ScenarioKind::TaylorGreenVortex => {
                "decaying vortex with analytic solution; reports the L2 velocity error"
            }
            ScenarioKind::ShearLayer => "perturbed tanh shear layer; kinetic energy decays",
        }
    }

    /// Parses a registry name (exact match on [`name`](Self::name), plus a
    /// few forgiving aliases).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "cavity" | "lid-driven-cavity" | "lid" => Some(ScenarioKind::LidDrivenCavity),
            "channel" => Some(ScenarioKind::Channel),
            "taylor-green" | "tg" | "taylor_green" => Some(ScenarioKind::TaylorGreenVortex),
            "shear-layer" | "shear" | "shear_layer" => Some(ScenarioKind::ShearLayer),
            _ => None,
        }
    }
}

/// The analytic 2-D Taylor–Green velocity on the unit square (extruded in
/// z), decaying with rate `2νπ²`:
/// `u = (sin πx · cos πy, −cos πx · sin πy, 0) · e^{−2π²νt}`.
pub fn taylor_green_velocity(p: Vec3, viscosity: f64, time: f64) -> Vec3 {
    let decay = (-2.0 * PI * PI * viscosity * time).exp();
    Vec3::new(
        (PI * p.x).sin() * (PI * p.y).cos() * decay,
        -(PI * p.x).cos() * (PI * p.y).sin() * decay,
        0.0,
    )
}

/// The shear-layer initial velocity: a tanh profile in y with a small
/// sinusoidal perturbation that triggers roll-up.
fn shear_layer_velocity(p: Vec3) -> Vec3 {
    let delta = 0.1;
    Vec3::new(((p.y - 0.5) / delta).tanh(), 0.05 * (2.0 * PI * p.x).sin(), 0.0)
}

/// A concrete, runnable scenario: a kind plus the resolution and physical
/// parameters of one run.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Which registered flow this is.
    pub kind: ScenarioKind,
    /// Elements per direction of the cross-section (the cavity and the
    /// vortex boxes are `n³`; the channel is `4n × n × n`).
    pub resolution: usize,
    /// Kinematic viscosity ν.
    pub viscosity: f64,
    /// Fluid density ρ.
    pub density: f64,
}

impl Scenario {
    /// A scenario of `kind` at `resolution`, with the kind's default
    /// physical parameters.
    ///
    /// # Panics
    /// Panics if `resolution` is zero.
    pub fn new(kind: ScenarioKind, resolution: usize) -> Self {
        assert!(resolution > 0, "resolution must be positive");
        let viscosity = match kind {
            ScenarioKind::LidDrivenCavity => 5e-2,
            ScenarioKind::Channel => 2e-2,
            ScenarioKind::TaylorGreenVortex => 1e-2,
            ScenarioKind::ShearLayer => 5e-3,
        };
        Scenario { kind, resolution, viscosity, density: 1.0 }
    }

    /// Builder: overrides the viscosity.
    pub fn with_viscosity(mut self, viscosity: f64) -> Self {
        assert!(viscosity > 0.0, "viscosity must be positive");
        self.viscosity = viscosity;
        self
    }

    /// The full registry at each kind's default demo resolution.
    pub fn registry() -> Vec<Scenario> {
        ScenarioKind::ALL.iter().map(|&kind| Scenario::new(kind, 8)).collect()
    }

    /// Looks a scenario up by registry name.
    pub fn by_name(name: &str, resolution: usize) -> Option<Scenario> {
        ScenarioKind::from_name(name).map(|kind| Scenario::new(kind, resolution))
    }

    /// Generates the scenario's mesh.
    pub fn build_mesh(&self) -> Mesh {
        let n = self.resolution;
        match self.kind {
            ScenarioKind::LidDrivenCavity => {
                BoxMeshBuilder::new(n, n, n).lid_driven_cavity().build()
            }
            ScenarioKind::Channel => ChannelMeshBuilder::new(n, 4).build(),
            // All-walls tagging: every boundary node is Dirichlet, with the
            // values supplied per step by `apply_velocity_bcs`.
            ScenarioKind::TaylorGreenVortex | ScenarioKind::ShearLayer => {
                BoxMeshBuilder::new(n, n, n).build()
            }
        }
    }

    /// Initial velocity and pressure fields (boundary conditions already
    /// applied).
    pub fn initial_state(&self, mesh: &Mesh) -> (VectorField, Field) {
        let mut velocity = match self.kind {
            ScenarioKind::LidDrivenCavity => VectorField::zeros(mesh),
            ScenarioKind::Channel => VectorField::constant(mesh, Vec3::new(1.0, 0.0, 0.0)),
            ScenarioKind::TaylorGreenVortex => {
                let nu = self.viscosity;
                VectorField::from_fn(mesh, |p| taylor_green_velocity(p, nu, 0.0))
            }
            ScenarioKind::ShearLayer => VectorField::from_fn(mesh, shear_layer_velocity),
        };
        self.apply_velocity_bcs(mesh, &mut velocity, 0.0);
        (velocity, Field::zeros(mesh))
    }

    /// Imposes the scenario's Dirichlet velocity values at simulation time
    /// `time` (the Taylor–Green boundary values decay with time; all other
    /// scenarios are steady).
    pub fn apply_velocity_bcs(&self, mesh: &Mesh, velocity: &mut VectorField, time: f64) {
        match self.kind {
            ScenarioKind::LidDrivenCavity => {
                velocity.apply_boundary_conditions(mesh, Vec3::new(1.0, 0.0, 0.0), Vec3::ZERO);
            }
            ScenarioKind::Channel => {
                velocity.apply_boundary_conditions(mesh, Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0));
            }
            ScenarioKind::TaylorGreenVortex => {
                for node in 0..mesh.num_nodes() {
                    if mesh.boundary_tag(node) != BoundaryTag::Interior {
                        let p = mesh.node_coords(node);
                        velocity.set(node, taylor_green_velocity(p, self.viscosity, time));
                    }
                }
            }
            ScenarioKind::ShearLayer => {
                for node in 0..mesh.num_nodes() {
                    if mesh.boundary_tag(node) != BoundaryTag::Interior {
                        velocity.set(node, shear_layer_velocity(mesh.node_coords(node)));
                    }
                }
            }
        }
    }

    /// Nodes whose pressure unknown is pinned to zero in the Poisson solve:
    /// the outflow plane for the channel (the physical reference), one
    /// corner node for the enclosed flows (the pure-Neumann Laplacian needs
    /// a gauge).
    pub fn pressure_pins(&self, mesh: &Mesh) -> Vec<usize> {
        match self.kind {
            ScenarioKind::Channel => (0..mesh.num_nodes())
                .filter(|&n| mesh.boundary_tag(n) == BoundaryTag::Outflow)
                .collect(),
            _ => vec![0],
        }
    }

    /// The analytic velocity at `(p, time)`, for scenarios that have one.
    pub fn analytic_velocity(&self, p: Vec3, time: f64) -> Option<Vec3> {
        match self.kind {
            ScenarioKind::TaylorGreenVortex => Some(taylor_green_velocity(p, self.viscosity, time)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_round_trip() {
        for kind in ScenarioKind::ALL {
            assert_eq!(ScenarioKind::from_name(kind.name()), Some(kind));
            assert!(!kind.describe().is_empty());
        }
        assert_eq!(ScenarioKind::from_name("tg"), Some(ScenarioKind::TaylorGreenVortex));
        assert_eq!(ScenarioKind::from_name("nope"), None);
        assert_eq!(Scenario::registry().len(), ScenarioKind::ALL.len());
        assert!(Scenario::by_name("cavity", 6).is_some());
        assert!(Scenario::by_name("bogus", 6).is_none());
    }

    #[test]
    fn taylor_green_is_divergence_free_and_decays() {
        // Central-difference divergence of the analytic field.
        let nu = 0.01;
        let h = 1e-6;
        let p = Vec3::new(0.3, 0.7, 0.5);
        let dudx = (taylor_green_velocity(Vec3::new(p.x + h, p.y, p.z), nu, 0.2).x
            - taylor_green_velocity(Vec3::new(p.x - h, p.y, p.z), nu, 0.2).x)
            / (2.0 * h);
        let dvdy = (taylor_green_velocity(Vec3::new(p.x, p.y + h, p.z), nu, 0.2).y
            - taylor_green_velocity(Vec3::new(p.x, p.y - h, p.z), nu, 0.2).y)
            / (2.0 * h);
        assert!((dudx + dvdy).abs() < 1e-6);
        let early = taylor_green_velocity(p, nu, 0.0).norm();
        let late = taylor_green_velocity(p, nu, 1.0).norm();
        assert!(late < early);
        let expected = early * (-2.0 * PI * PI * nu).exp();
        assert!((late - expected).abs() < 1e-12);
    }

    #[test]
    fn scenarios_build_valid_meshes_with_consistent_bcs() {
        for scenario in Scenario::registry() {
            let mesh = scenario.build_mesh();
            assert!(mesh.validate().is_empty(), "{}", scenario.kind.name());
            let (velocity, pressure) = scenario.initial_state(&mesh);
            assert_eq!(velocity.num_nodes(), mesh.num_nodes());
            assert_eq!(pressure.len(), mesh.num_nodes());
            let pins = scenario.pressure_pins(&mesh);
            assert!(!pins.is_empty(), "{}", scenario.kind.name());
            assert!(pins.iter().all(|&p| p < mesh.num_nodes()));
            // Re-applying the BCs at t = 0 must be idempotent.
            let mut again = velocity.clone();
            scenario.apply_velocity_bcs(&mesh, &mut again, 0.0);
            for (a, b) in velocity.as_slice().iter().zip(again.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn channel_pins_the_outflow_plane() {
        let scenario = Scenario::new(ScenarioKind::Channel, 4);
        let mesh = scenario.build_mesh();
        let pins = scenario.pressure_pins(&mesh);
        assert_eq!(pins.len(), 5 * 5, "one pin per outflow-plane node");
        for &p in &pins {
            assert_eq!(mesh.boundary_tag(p), BoundaryTag::Outflow);
        }
    }
}
