//! Binary checkpoint/restart for the fractional-step driver.
//!
//! A checkpoint stores the complete [`SimState`] — step index, time,
//! velocity, pressure — plus the scenario identity it belongs to, with every
//! `f64` written as its exact little-endian bit pattern.  Restarting from a
//! checkpoint therefore reproduces the uninterrupted trajectory **bitwise**:
//! the stepper is a pure function of the state (Δt is recomputed from the
//! restored velocity by the same CFL rule), so no auxiliary solver state
//! needs to be saved.
//!
//! Format (all integers little-endian):
//!
//! ```text
//! magic   8 B   "LVCKPT01"
//! name    u32 length + UTF-8 scenario registry name
//! resolution u32, viscosity f64, density f64   (scenario identity)
//! step    u64, time f64
//! velocity u64 length + f64 values (NDIME-interleaved)
//! pressure u64 length + f64 values
//! checksum u64   FNV-1a over everything after the magic
//! ```

use crate::scenario::{Scenario, ScenarioKind};
use crate::stepper::SimState;
use lv_mesh::{Field, Mesh, VectorField};
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"LVCKPT01";

/// FNV-1a over a byte stream — tiny, dependency-free integrity check.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn push_f64s(buf: &mut Vec<u8>, values: &[f64]) {
    buf.extend_from_slice(&(values.len() as u64).to_le_bytes());
    for v in values {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

struct Reader<'a> {
    data: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.at + n > self.data.len() {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "truncated checkpoint"));
        }
        let slice = &self.data[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn f64s(&mut self) -> io::Result<Vec<f64>> {
        let len = self.u64()? as usize;
        // Guard against absurd lengths before allocating.
        if len > self.data.len() / 8 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "corrupt field length"));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.f64()?);
        }
        Ok(out)
    }
}

/// The decoded contents of a checkpoint file.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Scenario registry name the run belonged to.
    pub scenario: String,
    /// Scenario resolution.
    pub resolution: usize,
    /// Scenario viscosity (exact bits).
    pub viscosity: f64,
    /// Scenario density (exact bits).
    pub density: f64,
    /// Completed steps.
    pub step: u64,
    /// Simulation time (exact bits).
    pub time: f64,
    /// Raw interleaved velocity values.
    pub velocity: Vec<f64>,
    /// Raw pressure values.
    pub pressure: Vec<f64>,
}

impl Checkpoint {
    /// Rebuilds a [`SimState`] over `mesh`, validating the field sizes.
    ///
    /// # Errors
    /// Returns [`io::ErrorKind::InvalidData`] if the stored fields do not
    /// match the mesh.
    pub fn into_state(self, mesh: &Mesh) -> io::Result<SimState> {
        let n = mesh.num_nodes();
        if self.velocity.len() != lv_mesh::NDIME * n || self.pressure.len() != n {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "checkpoint fields ({} velocity / {} pressure values) do not match a \
                     {n}-node mesh",
                    self.velocity.len(),
                    self.pressure.len()
                ),
            ));
        }
        let mut velocity = VectorField::zeros(mesh);
        velocity.as_mut_slice().copy_from_slice(&self.velocity);
        let pressure = Field::from_values(mesh, self.pressure);
        Ok(SimState { step: self.step, time: self.time, velocity, pressure })
    }

    /// Checks that this checkpoint belongs to `scenario` (same kind,
    /// resolution and exact physical parameters).
    ///
    /// # Errors
    /// Returns [`io::ErrorKind::InvalidData`] describing the first mismatch.
    pub fn validate_scenario(&self, scenario: &Scenario) -> io::Result<()> {
        let mismatch = |what: &str| {
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("checkpoint does not match the requested scenario: {what} differs"),
            ))
        };
        if ScenarioKind::from_name(&self.scenario) != Some(scenario.kind) {
            return mismatch("scenario kind");
        }
        if self.resolution != scenario.resolution {
            return mismatch("resolution");
        }
        if self.viscosity.to_bits() != scenario.viscosity.to_bits() {
            return mismatch("viscosity");
        }
        if self.density.to_bits() != scenario.density.to_bits() {
            return mismatch("density");
        }
        Ok(())
    }
}

/// Serializes `state` to `path` **atomically**: the bytes go to a
/// `<path>.tmp` sibling first and are renamed over the target only after a
/// successful `fsync`, so a crash (or full disk) mid-write can never
/// destroy the previous good checkpoint — the exact kill scenario periodic
/// checkpointing exists to survive.
///
/// # Errors
/// Any I/O error of creating, writing or renaming the file.
pub fn save_checkpoint(
    path: impl AsRef<Path>,
    scenario: &Scenario,
    state: &SimState,
) -> io::Result<()> {
    let mut payload = Vec::new();
    let name = scenario.kind.name().as_bytes();
    payload.extend_from_slice(&(name.len() as u32).to_le_bytes());
    payload.extend_from_slice(name);
    payload.extend_from_slice(&(scenario.resolution as u32).to_le_bytes());
    payload.extend_from_slice(&scenario.viscosity.to_le_bytes());
    payload.extend_from_slice(&scenario.density.to_le_bytes());
    payload.extend_from_slice(&state.step.to_le_bytes());
    payload.extend_from_slice(&state.time.to_le_bytes());
    push_f64s(&mut payload, state.velocity.as_slice());
    push_f64s(&mut payload, state.pressure.as_slice());
    let checksum = fnv1a(&payload);

    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let write_tmp = || -> io::Result<()> {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(MAGIC)?;
        file.write_all(&payload)?;
        file.write_all(&checksum.to_le_bytes())?;
        file.sync_all()
    };
    let result = write_tmp().and_then(|()| std::fs::rename(&tmp, path));
    if result.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    result
}

/// Reads and verifies a checkpoint from `path`.
///
/// # Errors
/// I/O errors, a bad magic, a truncated file or a checksum mismatch.
pub fn load_checkpoint(path: impl AsRef<Path>) -> io::Result<Checkpoint> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < MAGIC.len() + 8 || &bytes[..MAGIC.len()] != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not an lv-driver checkpoint"));
    }
    let payload = &bytes[MAGIC.len()..bytes.len() - 8];
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
    if fnv1a(payload) != stored {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "checkpoint checksum mismatch"));
    }
    let mut r = Reader { data: payload, at: 0 };
    let name_len = r.u32()? as usize;
    let scenario = String::from_utf8(r.take(name_len)?.to_vec())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "corrupt scenario name"))?;
    let resolution = r.u32()? as usize;
    let viscosity = r.f64()?;
    let density = r.f64()?;
    let step = r.u64()?;
    let time = r.f64()?;
    let velocity = r.f64s()?;
    let pressure = r.f64s()?;
    Ok(Checkpoint { scenario, resolution, viscosity, density, step, time, velocity, pressure })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioKind;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("lv_ckpt_test_{tag}_{}.bin", std::process::id()))
    }

    fn sample() -> (Scenario, Mesh, SimState) {
        let scenario = Scenario::new(ScenarioKind::LidDrivenCavity, 3);
        let mesh = scenario.build_mesh();
        let (mut velocity, mut pressure) = scenario.initial_state(&mesh);
        velocity.set(5, lv_mesh::Vec3::new(0.123456789, -9.87e-5, 3.25));
        *pressure.value_mut(7) = -0.5f64.powi(30);
        let state = SimState { step: 42, time: 1.0625, velocity, pressure };
        (scenario, mesh, state)
    }

    #[test]
    fn checkpoint_round_trips_bitwise() {
        let (scenario, mesh, state) = sample();
        let path = temp_path("roundtrip");
        save_checkpoint(&path, &scenario, &state).expect("save");
        let loaded = load_checkpoint(&path).expect("load");
        std::fs::remove_file(&path).ok();
        loaded.validate_scenario(&scenario).expect("identity");
        assert_eq!(loaded.step, 42);
        assert_eq!(loaded.time.to_bits(), state.time.to_bits());
        let restored = loaded.into_state(&mesh).expect("state");
        for (a, b) in state.velocity.as_slice().iter().zip(restored.velocity.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in state.pressure.as_slice().iter().zip(restored.pressure.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn corruption_and_mismatch_are_detected() {
        let (scenario, mesh, state) = sample();
        let path = temp_path("corrupt");
        save_checkpoint(&path, &scenario, &state).expect("save");
        // Flip one payload byte: the checksum must catch it.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[20] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(load_checkpoint(&path).is_err());
        std::fs::remove_file(&path).ok();

        // Wrong magic.
        let path = temp_path("magic");
        std::fs::write(&path, b"not a checkpoint at all").unwrap();
        assert!(load_checkpoint(&path).is_err());
        std::fs::remove_file(&path).ok();

        // Scenario mismatch and mesh mismatch.
        let path = temp_path("mismatch");
        save_checkpoint(&path, &scenario, &state).expect("save");
        let loaded = load_checkpoint(&path).expect("load");
        std::fs::remove_file(&path).ok();
        let other = Scenario::new(ScenarioKind::Channel, 3);
        assert!(loaded.validate_scenario(&other).is_err());
        let finer = Scenario::new(ScenarioKind::LidDrivenCavity, 5);
        assert!(loaded.validate_scenario(&finer).is_err());
        let wrong_mesh = finer.build_mesh();
        assert!(loaded.into_state(&wrong_mesh).is_err());
        let _ = mesh;
    }
}
