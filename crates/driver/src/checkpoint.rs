//! Binary checkpoint/restart for the fractional-step driver.
//!
//! A checkpoint stores the complete [`SimState`] — step index, time,
//! velocity, pressure — plus the scenario identity it belongs to, with every
//! `f64` written as its exact little-endian bit pattern.  Restarting from a
//! checkpoint therefore reproduces the uninterrupted trajectory **bitwise**:
//! the stepper is a pure function of the state (Δt is recomputed from the
//! restored velocity by the same CFL rule), so no auxiliary solver state
//! needs to be saved.
//!
//! Format (all integers little-endian):
//!
//! ```text
//! magic   8 B   "LVCKPT01"
//! name    u32 length + UTF-8 scenario registry name
//! resolution u32, viscosity f64, density f64   (scenario identity)
//! step    u64, time f64
//! velocity u64 length + f64 values (NDIME-interleaved)
//! pressure u64 length + f64 values
//! checksum u64   FNV-1a over everything after the magic
//! ```
//!
//! ## The checkpoint ring
//!
//! A [`CheckpointRing`] of depth K keeps the last K generations as plain
//! files in this exact format, named `<base>.0` (newest) through
//! `<base>.K-1` (oldest).  A save rotates `.i → .i+1` (dropping the oldest)
//! and then writes `.0` with the same atomic tmp + fsync + rename protocol
//! as [`save_checkpoint`], so no crash point can lose more than the
//! in-flight generation.  [`CheckpointRing::load_latest`] walks `.0`, `.1`,
//! … and returns the newest generation that decodes and passes its
//! checksum, reporting every corrupt/truncated generation it had to skip —
//! a bit-flipped newest checkpoint degrades a restart by one save interval
//! instead of killing it.

use crate::scenario::{Scenario, ScenarioKind};
use crate::stepper::SimState;
use lv_mesh::{Field, Mesh, VectorField};
use lv_trace::{counters, spans, Trace};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"LVCKPT01";

/// FNV-1a over a byte stream — tiny, dependency-free integrity check.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn push_f64s(buf: &mut Vec<u8>, values: &[f64]) {
    buf.extend_from_slice(&(values.len() as u64).to_le_bytes());
    for v in values {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

struct Reader<'a> {
    data: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.at + n > self.data.len() {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "truncated checkpoint"));
        }
        let slice = &self.data[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn f64s(&mut self) -> io::Result<Vec<f64>> {
        let len = self.u64()? as usize;
        // Guard against absurd lengths before allocating.
        if len > self.data.len() / 8 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "corrupt field length"));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.f64()?);
        }
        Ok(out)
    }
}

/// The decoded contents of a checkpoint file.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Scenario registry name the run belonged to.
    pub scenario: String,
    /// Scenario resolution.
    pub resolution: usize,
    /// Scenario viscosity (exact bits).
    pub viscosity: f64,
    /// Scenario density (exact bits).
    pub density: f64,
    /// Completed steps.
    pub step: u64,
    /// Simulation time (exact bits).
    pub time: f64,
    /// Raw interleaved velocity values.
    pub velocity: Vec<f64>,
    /// Raw pressure values.
    pub pressure: Vec<f64>,
}

impl Checkpoint {
    /// Rebuilds a [`SimState`] over `mesh`, validating the field sizes.
    ///
    /// # Errors
    /// Returns [`io::ErrorKind::InvalidData`] if the stored fields do not
    /// match the mesh.
    pub fn into_state(self, mesh: &Mesh) -> io::Result<SimState> {
        let n = mesh.num_nodes();
        if self.velocity.len() != lv_mesh::NDIME * n || self.pressure.len() != n {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "checkpoint fields ({} velocity / {} pressure values) do not match a \
                     {n}-node mesh",
                    self.velocity.len(),
                    self.pressure.len()
                ),
            ));
        }
        let mut velocity = VectorField::zeros(mesh);
        velocity.as_mut_slice().copy_from_slice(&self.velocity);
        let pressure = Field::from_values(mesh, self.pressure);
        Ok(SimState { step: self.step, time: self.time, velocity, pressure })
    }

    /// Checks that this checkpoint belongs to `scenario` (same kind,
    /// resolution and exact physical parameters).
    ///
    /// # Errors
    /// Returns [`io::ErrorKind::InvalidData`] describing the first mismatch.
    pub fn validate_scenario(&self, scenario: &Scenario) -> io::Result<()> {
        let mismatch = |what: &str| {
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("checkpoint does not match the requested scenario: {what} differs"),
            ))
        };
        if ScenarioKind::from_name(&self.scenario) != Some(scenario.kind) {
            return mismatch("scenario kind");
        }
        if self.resolution != scenario.resolution {
            return mismatch("resolution");
        }
        if self.viscosity.to_bits() != scenario.viscosity.to_bits() {
            return mismatch("viscosity");
        }
        if self.density.to_bits() != scenario.density.to_bits() {
            return mismatch("density");
        }
        Ok(())
    }
}

/// Serializes `state` to `path` **atomically**: the bytes go to a
/// `<path>.tmp` sibling first and are renamed over the target only after a
/// successful `fsync`, so a crash (or full disk) mid-write can never
/// destroy the previous good checkpoint — the exact kill scenario periodic
/// checkpointing exists to survive.
///
/// # Errors
/// Any I/O error of creating, writing or renaming the file.
pub fn save_checkpoint(
    path: impl AsRef<Path>,
    scenario: &Scenario,
    state: &SimState,
) -> io::Result<()> {
    let mut payload = Vec::new();
    let name = scenario.kind.name().as_bytes();
    payload.extend_from_slice(&(name.len() as u32).to_le_bytes());
    payload.extend_from_slice(name);
    payload.extend_from_slice(&(scenario.resolution as u32).to_le_bytes());
    payload.extend_from_slice(&scenario.viscosity.to_le_bytes());
    payload.extend_from_slice(&scenario.density.to_le_bytes());
    payload.extend_from_slice(&state.step.to_le_bytes());
    payload.extend_from_slice(&state.time.to_le_bytes());
    push_f64s(&mut payload, state.velocity.as_slice());
    push_f64s(&mut payload, state.pressure.as_slice());
    let checksum = fnv1a(&payload);

    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let write_tmp = || -> io::Result<()> {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(MAGIC)?;
        file.write_all(&payload)?;
        file.write_all(&checksum.to_le_bytes())?;
        file.sync_all()
    };
    let result = write_tmp().and_then(|()| std::fs::rename(&tmp, path));
    if result.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    result
}

/// Dominant payload size of a state's checkpoint: the field values
/// (everything else is a fixed few dozen header bytes).
fn state_bytes(state: &SimState) -> u64 {
    8 * (state.velocity.as_slice().len() + state.pressure.as_slice().len()) as u64
}

/// [`save_checkpoint`] wrapped in telemetry: a `checkpoint/save` span
/// (`bytes` = field payload, `iters` = 1 on success / 0 on failure) plus
/// [`counters::CHECKPOINT_SAVES`] when the write lands.  `trace = None`
/// degrades to the plain save.
///
/// # Errors
/// See [`save_checkpoint`].
pub fn save_checkpoint_traced(
    path: impl AsRef<Path>,
    scenario: &Scenario,
    state: &SimState,
    trace: Option<&Trace>,
) -> io::Result<()> {
    let span = trace.map(|t| t.span(spans::CHECKPOINT_SAVE, 0).bytes(state_bytes(state)));
    let result = save_checkpoint(path, scenario, state);
    if let Some(s) = span {
        s.iters(result.is_ok() as u64).finish();
    }
    if result.is_ok() {
        if let Some(t) = trace {
            t.add(counters::CHECKPOINT_SAVES, 1);
        }
    }
    result
}

/// Reads and verifies a checkpoint from `path`.
///
/// # Errors
/// I/O errors, a bad magic, a truncated file or a checksum mismatch.
pub fn load_checkpoint(path: impl AsRef<Path>) -> io::Result<Checkpoint> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < MAGIC.len() + 8 || &bytes[..MAGIC.len()] != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not an lv-driver checkpoint"));
    }
    let payload = &bytes[MAGIC.len()..bytes.len() - 8];
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
    if fnv1a(payload) != stored {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "checkpoint checksum mismatch"));
    }
    let mut r = Reader { data: payload, at: 0 };
    let name_len = r.u32()? as usize;
    let scenario = String::from_utf8(r.take(name_len)?.to_vec())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "corrupt scenario name"))?;
    let resolution = r.u32()? as usize;
    let viscosity = r.f64()?;
    let density = r.f64()?;
    let step = r.u64()?;
    let time = r.f64()?;
    let velocity = r.f64s()?;
    let pressure = r.f64s()?;
    Ok(Checkpoint { scenario, resolution, viscosity, density, step, time, velocity, pressure })
}

/// [`load_checkpoint`] wrapped in telemetry: a `checkpoint/load` span
/// (`bytes` = decoded field payload, `iters` = 1 on success / 0 on failure)
/// plus [`counters::CHECKPOINT_LOADS`] when the read succeeds.
///
/// # Errors
/// See [`load_checkpoint`].
pub fn load_checkpoint_traced(
    path: impl AsRef<Path>,
    trace: Option<&Trace>,
) -> io::Result<Checkpoint> {
    let span = trace.map(|t| t.span(spans::CHECKPOINT_LOAD, 0));
    let result = load_checkpoint(path);
    if let Some(s) = span {
        let bytes = result.as_ref().map_or(0, |c| 8 * (c.velocity.len() + c.pressure.len()) as u64);
        s.iters(result.is_ok() as u64).bytes(bytes).finish();
    }
    if result.is_ok() {
        if let Some(t) = trace {
            t.add(counters::CHECKPOINT_LOADS, 1);
        }
    }
    result
}

/// A successful [`CheckpointRing::load_latest`]: which generation actually
/// restored the run, and what was skipped to get there.
#[derive(Debug)]
pub struct RingRecovery {
    /// The decoded checkpoint.
    pub checkpoint: Checkpoint,
    /// Generation it came from (0 = newest slot).
    pub generation: usize,
    /// The slot file it was read from.
    pub path: PathBuf,
    /// Newer generations that existed but failed to load, with the error
    /// message each produced (empty on a clean restart).
    pub skipped: Vec<(PathBuf, String)>,
}

/// A rotating ring of the last K checkpoints (see the module docs).
#[derive(Debug, Clone)]
pub struct CheckpointRing {
    base: PathBuf,
    depth: usize,
}

impl CheckpointRing {
    /// A ring of `depth ≥ 1` generations rooted at `base` (the slot files
    /// are `<base>.0` … `<base>.depth-1`).
    pub fn new(base: impl Into<PathBuf>, depth: usize) -> Self {
        assert!(depth >= 1, "a checkpoint ring needs at least one slot");
        CheckpointRing { base: base.into(), depth }
    }

    /// Number of generations the ring keeps.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The slot file of `generation` (0 = newest).
    pub fn slot(&self, generation: usize) -> PathBuf {
        let mut name = self.base.as_os_str().to_owned();
        name.push(format!(".{generation}"));
        PathBuf::from(name)
    }

    /// Saves a new generation: rotates every existing slot one step towards
    /// the oldest (dropping `.depth-1`) and writes the state to `.0`
    /// atomically.  Returns the path of the new newest slot.
    ///
    /// # Errors
    /// Any I/O error of the rotation renames or the checkpoint write.
    pub fn save(&self, scenario: &Scenario, state: &SimState) -> io::Result<PathBuf> {
        let oldest = self.slot(self.depth - 1);
        if oldest.exists() {
            std::fs::remove_file(&oldest)?;
        }
        for generation in (0..self.depth - 1).rev() {
            let from = self.slot(generation);
            if from.exists() {
                std::fs::rename(&from, self.slot(generation + 1))?;
            }
        }
        let newest = self.slot(0);
        save_checkpoint(&newest, scenario, state)?;
        Ok(newest)
    }

    /// [`CheckpointRing::save`] wrapped in telemetry (see
    /// [`save_checkpoint_traced`]; the span covers rotation + write).
    ///
    /// # Errors
    /// See [`CheckpointRing::save`].
    pub fn save_traced(
        &self,
        scenario: &Scenario,
        state: &SimState,
        trace: Option<&Trace>,
    ) -> io::Result<PathBuf> {
        let span = trace.map(|t| t.span(spans::CHECKPOINT_SAVE, 0).bytes(state_bytes(state)));
        let result = self.save(scenario, state);
        if let Some(s) = span {
            s.iters(result.is_ok() as u64).finish();
        }
        if result.is_ok() {
            if let Some(t) = trace {
                t.add(counters::CHECKPOINT_SAVES, 1);
            }
        }
        result
    }

    /// [`CheckpointRing::load_latest`] wrapped in telemetry (see
    /// [`load_checkpoint_traced`]; `aux` carries the restoring generation).
    ///
    /// # Errors
    /// See [`CheckpointRing::load_latest`].
    pub fn load_latest_traced(&self, trace: Option<&Trace>) -> io::Result<RingRecovery> {
        let span = trace.map(|t| t.span(spans::CHECKPOINT_LOAD, 0));
        let result = self.load_latest();
        if let Some(s) = span {
            let (bytes, generation) = result.as_ref().map_or((0, 0), |r| {
                (
                    8 * (r.checkpoint.velocity.len() + r.checkpoint.pressure.len()) as u64,
                    r.generation as u64,
                )
            });
            s.iters(result.is_ok() as u64).bytes(bytes).aux(generation).finish();
        }
        if result.is_ok() {
            if let Some(t) = trace {
                t.add(counters::CHECKPOINT_LOADS, 1);
            }
        }
        result
    }

    /// Loads the newest generation that decodes and passes its checksum,
    /// skipping (and reporting) corrupt, truncated or missing newer slots.
    ///
    /// # Errors
    /// [`io::ErrorKind::NotFound`] when no slot exists at all, or the last
    /// slot's error (wrapped with the list of everything skipped) when every
    /// existing generation is damaged.
    pub fn load_latest(&self) -> io::Result<RingRecovery> {
        let mut skipped = Vec::new();
        let mut any_exist = false;
        for generation in 0..self.depth {
            let path = self.slot(generation);
            if !path.exists() {
                continue;
            }
            any_exist = true;
            match load_checkpoint(&path) {
                Ok(checkpoint) => {
                    return Ok(RingRecovery { checkpoint, generation, path, skipped })
                }
                Err(e) => skipped.push((path, e.to_string())),
            }
        }
        if !any_exist {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no checkpoint ring generations at {}.*", self.base.display()),
            ));
        }
        let detail = skipped
            .iter()
            .map(|(p, e)| format!("{}: {e}", p.display()))
            .collect::<Vec<_>>()
            .join("; ");
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("every checkpoint ring generation is damaged ({detail})"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioKind;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("lv_ckpt_test_{tag}_{}.bin", std::process::id()))
    }

    fn sample() -> (Scenario, Mesh, SimState) {
        let scenario = Scenario::new(ScenarioKind::LidDrivenCavity, 3);
        let mesh = scenario.build_mesh();
        let (mut velocity, mut pressure) = scenario.initial_state(&mesh);
        velocity.set(5, lv_mesh::Vec3::new(0.123456789, -9.87e-5, 3.25));
        *pressure.value_mut(7) = -0.5f64.powi(30);
        let state = SimState { step: 42, time: 1.0625, velocity, pressure };
        (scenario, mesh, state)
    }

    #[test]
    fn checkpoint_round_trips_bitwise() {
        let (scenario, mesh, state) = sample();
        let path = temp_path("roundtrip");
        save_checkpoint(&path, &scenario, &state).expect("save");
        let loaded = load_checkpoint(&path).expect("load");
        std::fs::remove_file(&path).ok();
        loaded.validate_scenario(&scenario).expect("identity");
        assert_eq!(loaded.step, 42);
        assert_eq!(loaded.time.to_bits(), state.time.to_bits());
        let restored = loaded.into_state(&mesh).expect("state");
        for (a, b) in state.velocity.as_slice().iter().zip(restored.velocity.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in state.pressure.as_slice().iter().zip(restored.pressure.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn corruption_and_mismatch_are_detected() {
        let (scenario, mesh, state) = sample();
        let path = temp_path("corrupt");
        save_checkpoint(&path, &scenario, &state).expect("save");
        // Flip one payload byte: the checksum must catch it.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[20] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(load_checkpoint(&path).is_err());
        std::fs::remove_file(&path).ok();

        // Wrong magic.
        let path = temp_path("magic");
        std::fs::write(&path, b"not a checkpoint at all").unwrap();
        assert!(load_checkpoint(&path).is_err());
        std::fs::remove_file(&path).ok();

        // Scenario mismatch and mesh mismatch.
        let path = temp_path("mismatch");
        save_checkpoint(&path, &scenario, &state).expect("save");
        let loaded = load_checkpoint(&path).expect("load");
        std::fs::remove_file(&path).ok();
        let other = Scenario::new(ScenarioKind::Channel, 3);
        assert!(loaded.validate_scenario(&other).is_err());
        let finer = Scenario::new(ScenarioKind::LidDrivenCavity, 5);
        assert!(loaded.validate_scenario(&finer).is_err());
        let wrong_mesh = finer.build_mesh();
        assert!(loaded.into_state(&wrong_mesh).is_err());
        let _ = mesh;
    }

    #[test]
    fn truncation_at_every_section_boundary_is_invalid_data() {
        let (scenario, _mesh, state) = sample();
        let path = temp_path("truncate");
        save_checkpoint(&path, &scenario, &state).expect("save");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();

        // Cumulative section boundaries of the format, in order.
        let name_len = scenario.kind.name().len();
        let nv = state.velocity.as_slice().len();
        let np = state.pressure.as_slice().len();
        let sections: [usize; 12] = [
            8,        // magic
            4,        // name length
            name_len, // name bytes
            4,        // resolution
            8,        // viscosity
            8,        // density
            8,        // step
            8,        // time
            8,        // velocity length
            8 * nv,   // velocity values
            8,        // pressure length
            8 * np,   // pressure values
        ];
        let mut at = 0;
        let mut boundaries = vec![0usize];
        for s in sections {
            at += s;
            boundaries.push(at);
        }
        assert_eq!(at + 8, bytes.len(), "boundary arithmetic must cover the whole file");

        for &cut in &boundaries {
            let truncated = &bytes[..cut];
            let path = temp_path(&format!("truncate_{cut}"));
            std::fs::write(&path, truncated).unwrap();
            let err = load_checkpoint(&path).expect_err("truncated checkpoint must not load");
            std::fs::remove_file(&path).ok();
            assert_eq!(
                err.kind(),
                io::ErrorKind::InvalidData,
                "cut at {cut}: got {err} ({:?})",
                err.kind()
            );
        }
    }

    #[test]
    fn payload_and_checksum_bit_flips_are_invalid_data() {
        let (scenario, _mesh, state) = sample();
        let path = temp_path("bitflip");
        save_checkpoint(&path, &scenario, &state).expect("save");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();

        // A single bit flipped anywhere in the payload, and anywhere in the
        // trailing checksum, must both surface as the checksum-mismatch
        // InvalidData error.
        for at in [MAGIC.len() + 1, bytes.len() / 2, bytes.len() - 8, bytes.len() - 1] {
            let mut corrupt = bytes.clone();
            corrupt[at] ^= 0x10;
            let path = temp_path(&format!("bitflip_{at}"));
            std::fs::write(&path, &corrupt).unwrap();
            let err = load_checkpoint(&path).expect_err("corrupt checkpoint must not load");
            std::fs::remove_file(&path).ok();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "flip at {at}");
            assert!(err.to_string().contains("checksum"), "flip at {at}: {err}");
        }
    }

    fn ring_base(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("lv_ring_test_{tag}_{}", std::process::id()))
    }

    fn clear_ring(ring: &CheckpointRing) {
        for generation in 0..ring.depth() {
            std::fs::remove_file(ring.slot(generation)).ok();
        }
    }

    #[test]
    fn ring_rotates_and_loads_the_newest_generation() {
        let (scenario, _mesh, mut state) = sample();
        let ring = CheckpointRing::new(ring_base("rotate"), 3);
        clear_ring(&ring);
        for step in [10u64, 11, 12, 13] {
            state.step = step;
            let newest = ring.save(&scenario, &state).expect("ring save");
            assert_eq!(newest, ring.slot(0));
        }
        // Depth 3: steps 13/12/11 survive, 10 was dropped.
        for (generation, step) in [(0usize, 13u64), (1, 12), (2, 11)] {
            let ckpt = load_checkpoint(ring.slot(generation)).expect("slot loads");
            assert_eq!(ckpt.step, step, "generation {generation}");
        }
        let recovery = ring.load_latest().expect("latest");
        assert_eq!(recovery.generation, 0);
        assert_eq!(recovery.checkpoint.step, 13);
        assert!(recovery.skipped.is_empty());
        clear_ring(&ring);
    }

    #[test]
    fn ring_falls_back_past_corrupt_and_truncated_generations() {
        let (scenario, _mesh, mut state) = sample();
        let ring = CheckpointRing::new(ring_base("fallback"), 3);
        clear_ring(&ring);
        for step in [20u64, 21, 22] {
            state.step = step;
            ring.save(&scenario, &state).expect("ring save");
        }

        // Newest generation bit-flipped: fall back to generation 1.
        let mut bytes = std::fs::read(ring.slot(0)).unwrap();
        bytes[30] ^= 0xff;
        std::fs::write(ring.slot(0), &bytes).unwrap();
        let recovery = ring.load_latest().expect("fallback");
        assert_eq!(recovery.generation, 1);
        assert_eq!(recovery.checkpoint.step, 21);
        assert_eq!(recovery.skipped.len(), 1);
        assert_eq!(recovery.skipped[0].0, ring.slot(0));
        assert!(recovery.skipped[0].1.contains("checksum"));

        // Generation 1 truncated too: generation 2 carries the restart.
        let bytes = std::fs::read(ring.slot(1)).unwrap();
        std::fs::write(ring.slot(1), &bytes[..bytes.len() / 2]).unwrap();
        let recovery = ring.load_latest().expect("second fallback");
        assert_eq!(recovery.generation, 2);
        assert_eq!(recovery.checkpoint.step, 20);
        assert_eq!(recovery.skipped.len(), 2);

        // Every generation damaged: a structured InvalidData error naming
        // each slot, never a panic.
        let bytes = std::fs::read(ring.slot(2)).unwrap();
        std::fs::write(ring.slot(2), &bytes[..10]).unwrap();
        let err = ring.load_latest().expect_err("all damaged");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        for generation in 0..3 {
            let name = ring.slot(generation).display().to_string();
            assert!(err.to_string().contains(&name), "{err} must name {name}");
        }
        clear_ring(&ring);

        // An empty ring is NotFound, not InvalidData.
        let empty = CheckpointRing::new(ring_base("empty"), 2);
        clear_ring(&empty);
        assert_eq!(empty.load_latest().expect_err("empty").kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn traced_checkpoint_io_records_spans_and_counters() {
        use lv_trace::{summary::RunSummary, Trace, TraceConfig};
        let (scenario, _mesh, state) = sample();
        let mut trace = Trace::new(1, TraceConfig::default());
        let ring = CheckpointRing::new(ring_base("traced"), 2);
        clear_ring(&ring);
        ring.save_traced(&scenario, &state, Some(&trace)).expect("save");
        ring.save_traced(&scenario, &state, Some(&trace)).expect("save");
        let recovery = ring.load_latest_traced(Some(&trace)).expect("load");
        assert_eq!(recovery.generation, 0);
        clear_ring(&ring);
        // A failed load records a span with iters = 0 and no counter bump.
        assert!(ring.load_latest_traced(Some(&trace)).is_err());
        let summary = RunSummary::from_trace(&mut trace);
        assert_eq!(summary.counter("checkpoint_saves"), Some(2));
        assert_eq!(summary.counter("checkpoint_loads"), Some(1));
        let save = summary.span("checkpoint/save").expect("save span");
        assert_eq!((save.events, save.iters), (2, 2));
        assert_eq!(save.bytes, 2 * super::state_bytes(&state));
        let load = summary.span("checkpoint/load").expect("load span");
        assert_eq!((load.events, load.iters), (2, 1), "the failed load carries iters = 0");

        // The free-function wrappers share the same spans and counters.
        let path = temp_path("traced_free");
        save_checkpoint_traced(&path, &scenario, &state, Some(&trace)).expect("save");
        let loaded = load_checkpoint_traced(&path, Some(&trace)).expect("load");
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.step, state.step);
        assert_eq!(trace.counter(lv_trace::counters::CHECKPOINT_SAVES), 3);
        assert_eq!(trace.counter(lv_trace::counters::CHECKPOINT_LOADS), 2);
    }
}
