//! Deterministic fault injection for the recovery layer.
//!
//! A [`FaultPlan`] is a seeded, step-indexed list of faults the driver (and
//! the `simulate` CLI) consult at well-defined points of each step: force a
//! solver breakdown, poison a right-hand side with NaN, or corrupt the
//! checkpoint that was just written.  Every fault fires **at most once** —
//! the retry that follows must see a healthy system, exactly like a
//! transient hardware or convergence glitch — and every random-looking
//! choice (which RHS entry to poison, which checkpoint byte to flip) is a
//! pure function of `(seed, step)`, so an injected failure reproduces
//! bitwise across thread counts and across reruns with the same seed.
//!
//! CLI syntax (`simulate --inject <spec>`): a comma-separated list of
//! `kind@step` entries plus an optional `seed=N`, e.g.
//!
//! ```text
//! --inject momentum-breakdown@3,poison-rhs@5,ckpt-flip@6,seed=42
//! ```
//!
//! Kinds: `momentum-breakdown`, `poisson-breakdown`, `mg-breakdown`,
//! `poison-rhs`, `ckpt-flip`, `ckpt-truncate`, `stall`, `panic`.
//!
//! The last two exercise the *supervision* layer (`lv-server`) rather than
//! the in-step recovery: `stall@k` busy-waits for [`STALL_MILLIS`] at the
//! start of step `k` (bounded, so an unsupervised run still finishes — but
//! long enough for a per-step watchdog to blow its deadline), and `panic@k`
//! panics at the start of step `k` (contained by the server's
//! `catch_unwind`; aborts a bare `simulate` run, by design).  Neither
//! mutates the state, so trajectories are invariant to their firing.

/// What a planned fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The momentum (predictor) solve reports an injected breakdown.
    MomentumBreakdown,
    /// The pressure-Poisson solve reports an injected breakdown (after the
    /// CG fallback, i.e. the whole step fails and the Δt retry engages).
    PoissonBreakdown,
    /// Only the MG-preconditioned attempt breaks down: the plain-CG
    /// fallback chain absorbs it without failing the step.
    MultigridBreakdown,
    /// One momentum RHS entry is overwritten with NaN before the solve (the
    /// entry index is derived from the seed), exercising the non-finite
    /// entry guards.
    PoisonRhs,
    /// One byte of the checkpoint written at this step is bit-flipped
    /// (applied by the CLI layer after the ring save).
    CheckpointFlip,
    /// The checkpoint written at this step is truncated to half its length.
    CheckpointTruncate,
    /// The step busy-waits for [`STALL_MILLIS`] before doing any work — a
    /// deterministic stand-in for a hung rank.  The wait is bounded, so an
    /// unsupervised run still finishes; a supervisor's per-step watchdog
    /// sees the deadline blow and kills the slice.
    Stall,
    /// The step panics before doing any work, exercising the
    /// panic-containment path (`Team`'s panic-safe join plus the server's
    /// `catch_unwind` around a slice).  Aborts a bare `simulate` run.
    Panic,
}

/// How long a [`FaultKind::Stall`] busy-waits, in milliseconds.  Long
/// enough that any reasonable per-step watchdog deadline fits under it,
/// short enough that unsupervised runs and tests stay fast.
pub const STALL_MILLIS: u64 = 400;

/// The bounded busy-wait behind [`FaultKind::Stall`].  Spins (never
/// sleeps), like a rank stuck in a convergence loop would.
pub fn busy_stall() {
    let deadline = std::time::Instant::now() + std::time::Duration::from_millis(STALL_MILLIS);
    while std::time::Instant::now() < deadline {
        std::hint::spin_loop();
    }
}

impl FaultKind {
    /// Stable CLI name of the fault kind.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::MomentumBreakdown => "momentum-breakdown",
            FaultKind::PoissonBreakdown => "poisson-breakdown",
            FaultKind::MultigridBreakdown => "mg-breakdown",
            FaultKind::PoisonRhs => "poison-rhs",
            FaultKind::CheckpointFlip => "ckpt-flip",
            FaultKind::CheckpointTruncate => "ckpt-truncate",
            FaultKind::Stall => "stall",
            FaultKind::Panic => "panic",
        }
    }

    /// Parses a CLI name (the inverse of [`name`](Self::name)).
    pub fn from_name(name: &str) -> Option<FaultKind> {
        match name {
            "momentum-breakdown" => Some(FaultKind::MomentumBreakdown),
            "poisson-breakdown" => Some(FaultKind::PoissonBreakdown),
            "mg-breakdown" => Some(FaultKind::MultigridBreakdown),
            "poison-rhs" => Some(FaultKind::PoisonRhs),
            "ckpt-flip" => Some(FaultKind::CheckpointFlip),
            "ckpt-truncate" => Some(FaultKind::CheckpointTruncate),
            "stall" => Some(FaultKind::Stall),
            "panic" => Some(FaultKind::Panic),
            _ => None,
        }
    }

    /// Whether this fault targets a checkpoint file rather than a solver.
    pub fn is_checkpoint_fault(&self) -> bool {
        matches!(self, FaultKind::CheckpointFlip | FaultKind::CheckpointTruncate)
    }
}

/// One scheduled fault: fires the first time its step comes around, then
/// stays spent so the retry succeeds.
#[derive(Debug, Clone, PartialEq, Eq)]
struct PlannedFault {
    kind: FaultKind,
    step: u64,
    fired: bool,
}

/// A seeded, step-indexed fault schedule (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<PlannedFault>,
}

/// splitmix64 — the tiny deterministic mixer behind every "random" choice a
/// fault makes.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, faults: Vec::new() }
    }

    /// Builder: schedule `kind` for the step whose 1-based index is `step`
    /// (the step a [`crate::StepReport::step`] would report).
    pub fn with_fault(mut self, kind: FaultKind, step: u64) -> Self {
        self.faults.push(PlannedFault { kind, step, fired: false });
        self
    }

    /// The seed the deterministic choices derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether any faults are scheduled at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Scheduled faults that have not fired yet.
    pub fn pending(&self) -> usize {
        self.faults.iter().filter(|f| !f.fired).count()
    }

    /// Fires the first pending `kind` fault scheduled for `step`, if any.
    /// Returns `true` exactly once per scheduled entry.
    pub fn fire(&mut self, kind: FaultKind, step: u64) -> bool {
        for fault in &mut self.faults {
            if !fault.fired && fault.kind == kind && fault.step == step {
                fault.fired = true;
                return true;
            }
        }
        false
    }

    /// Fires the first pending checkpoint-targeting fault scheduled for
    /// `step` ([`FaultKind::CheckpointFlip`] / [`FaultKind::CheckpointTruncate`]).
    pub fn fire_checkpoint(&mut self, step: u64) -> Option<FaultKind> {
        for fault in &mut self.faults {
            if !fault.fired && fault.step == step && fault.kind.is_checkpoint_fault() {
                fault.fired = true;
                return Some(fault.kind);
            }
        }
        None
    }

    /// A deterministic index in `[0, len)` derived from `(seed, step, salt)`
    /// — used to pick the poisoned RHS entry or the corrupted checkpoint
    /// byte.  Pure function of its arguments: identical across thread
    /// counts and reruns.
    pub fn index(&self, step: u64, salt: u64, len: usize) -> usize {
        assert!(len > 0, "cannot pick an index in an empty range");
        let mixed = splitmix64(self.seed ^ splitmix64(step) ^ splitmix64(salt.wrapping_add(1)));
        (mixed % len as u64) as usize
    }

    /// Splits the plan into `(step faults, checkpoint faults)`, both keeping
    /// the seed and any fired flags.  A supervisor hands the first to the
    /// stepper it builds and fires the second itself after ring saves — the
    /// kinds are disjoint, so the split cannot double-fire anything.
    pub fn split_checkpoint(self) -> (FaultPlan, FaultPlan) {
        let mut step = FaultPlan::new(self.seed);
        let mut ckpt = FaultPlan::new(self.seed);
        for fault in self.faults {
            if fault.kind.is_checkpoint_fault() {
                ckpt.faults.push(fault);
            } else {
                step.faults.push(fault);
            }
        }
        (step, ckpt)
    }

    /// Parses the CLI `--inject` spec (see the module docs for the syntax).
    ///
    /// # Errors
    /// Returns a human-readable description of the first malformed entry.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new(0);
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            if let Some(seed) = entry.strip_prefix("seed=") {
                plan.seed = seed
                    .parse()
                    .map_err(|_| format!("bad seed '{seed}' (expected an unsigned integer)"))?;
                continue;
            }
            let (name, step) = entry
                .split_once('@')
                .ok_or_else(|| format!("bad fault '{entry}' (expected kind@step)"))?;
            let kind = FaultKind::from_name(name).ok_or_else(|| {
                format!(
                    "unknown fault kind '{name}' (expected one of momentum-breakdown, \
                     poisson-breakdown, mg-breakdown, poison-rhs, ckpt-flip, ckpt-truncate, \
                     stall, panic)"
                )
            })?;
            let step = step
                .parse()
                .map_err(|_| format!("bad step '{step}' in '{entry}' (expected an integer)"))?;
            plan = plan.with_fault(kind, step);
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_exactly_once_per_entry() {
        let mut plan = FaultPlan::new(7)
            .with_fault(FaultKind::MomentumBreakdown, 3)
            .with_fault(FaultKind::MomentumBreakdown, 3);
        assert_eq!(plan.pending(), 2);
        assert!(!plan.fire(FaultKind::MomentumBreakdown, 2), "wrong step must not fire");
        assert!(!plan.fire(FaultKind::PoissonBreakdown, 3), "wrong kind must not fire");
        assert!(plan.fire(FaultKind::MomentumBreakdown, 3));
        assert!(plan.fire(FaultKind::MomentumBreakdown, 3), "second scheduled entry");
        assert!(!plan.fire(FaultKind::MomentumBreakdown, 3), "both entries spent");
        assert_eq!(plan.pending(), 0);
    }

    #[test]
    fn checkpoint_faults_are_queried_separately() {
        let mut plan = FaultPlan::new(1)
            .with_fault(FaultKind::PoisonRhs, 4)
            .with_fault(FaultKind::CheckpointFlip, 4)
            .with_fault(FaultKind::CheckpointTruncate, 6);
        assert_eq!(plan.fire_checkpoint(4), Some(FaultKind::CheckpointFlip));
        assert_eq!(plan.fire_checkpoint(4), None, "flip spent, truncate is for step 6");
        assert_eq!(plan.fire_checkpoint(6), Some(FaultKind::CheckpointTruncate));
        assert!(plan.fire(FaultKind::PoisonRhs, 4), "solver fault untouched");
    }

    #[test]
    fn derived_indices_are_deterministic_and_seed_sensitive() {
        let plan = FaultPlan::new(42);
        let a = plan.index(5, 0, 1000);
        assert_eq!(a, plan.index(5, 0, 1000), "pure function of (seed, step, salt)");
        assert!(a < 1000);
        let other_salt = plan.index(5, 1, 1000);
        let other_seed = FaultPlan::new(43).index(5, 0, 1000);
        // Not a hard guarantee for every pair, but these specific mixes
        // differ — and must keep differing, deterministically.
        assert_ne!(a, other_salt);
        assert_ne!(a, other_seed);
    }

    #[test]
    fn cli_spec_round_trips() {
        let plan =
            FaultPlan::parse("momentum-breakdown@3, poison-rhs@5,ckpt-flip@6,seed=42").unwrap();
        assert_eq!(plan.seed(), 42);
        assert_eq!(plan.pending(), 3);
        let mut plan = plan;
        assert!(plan.fire(FaultKind::MomentumBreakdown, 3));
        assert!(plan.fire(FaultKind::PoisonRhs, 5));
        assert_eq!(plan.fire_checkpoint(6), Some(FaultKind::CheckpointFlip));

        assert!(FaultPlan::parse("bogus@3").is_err());
        assert!(FaultPlan::parse("poison-rhs@x").is_err());
        assert!(FaultPlan::parse("poison-rhs").is_err());
        assert!(FaultPlan::parse("seed=abc").is_err());
        assert!(FaultPlan::parse("").unwrap().is_empty());
        for kind in [
            FaultKind::MomentumBreakdown,
            FaultKind::PoissonBreakdown,
            FaultKind::MultigridBreakdown,
            FaultKind::PoisonRhs,
            FaultKind::CheckpointFlip,
            FaultKind::CheckpointTruncate,
            FaultKind::Stall,
            FaultKind::Panic,
        ] {
            assert_eq!(FaultKind::from_name(kind.name()), Some(kind));
        }
    }

    #[test]
    fn split_checkpoint_partitions_by_kind_and_keeps_the_seed() {
        let plan = FaultPlan::parse("stall@2,ckpt-flip@3,panic@4,ckpt-truncate@5,seed=11").unwrap();
        let (mut step, mut ckpt) = plan.split_checkpoint();
        assert_eq!(step.seed(), 11);
        assert_eq!(ckpt.seed(), 11);
        assert_eq!(step.pending(), 2);
        assert_eq!(ckpt.pending(), 2);
        assert!(step.fire(FaultKind::Stall, 2));
        assert!(step.fire(FaultKind::Panic, 4));
        assert_eq!(step.fire_checkpoint(3), None);
        assert_eq!(ckpt.fire_checkpoint(3), Some(FaultKind::CheckpointFlip));
        assert_eq!(ckpt.fire_checkpoint(5), Some(FaultKind::CheckpointTruncate));
    }

    #[test]
    fn supervision_kinds_parse_and_are_not_checkpoint_faults() {
        let mut plan = FaultPlan::parse("stall@2,panic@4,seed=9").unwrap();
        assert_eq!(plan.seed(), 9);
        assert!(!FaultKind::Stall.is_checkpoint_fault());
        assert!(!FaultKind::Panic.is_checkpoint_fault());
        assert_eq!(plan.fire_checkpoint(2), None, "stall is a step fault, not a ckpt fault");
        assert!(plan.fire(FaultKind::Stall, 2));
        assert!(plan.fire(FaultKind::Panic, 4));
        assert_eq!(plan.pending(), 0);
    }
}
