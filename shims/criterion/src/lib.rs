//! Offline stand-in for the `criterion` benchmark framework (see
//! `shims/README.md`).
//!
//! Provides the subset of the Criterion 0.5 API the wall-clock benches use
//! (`Criterion`, `BenchmarkGroup`, `Bencher`, `BenchmarkId`, the
//! `criterion_group!`/`criterion_main!` macros and `black_box`) with a
//! simple timing loop: each benchmark is warmed up once, then iterated for a
//! fixed wall-clock budget, and the mean iteration time is printed.  No
//! statistics, no HTML reports — just enough to compile the harnesses under
//! `cargo bench --no-run` and give a usable number when actually run.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock budget spent measuring each benchmark after warm-up.
const MEASUREMENT_BUDGET: Duration = Duration::from_millis(500);

/// Hard cap on measured iterations per benchmark.
const MAX_ITERATIONS: u64 = 1000;

/// Stand-in for `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup { _criterion: self, name }
    }

    /// Times a single benchmark function.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), &mut f);
        self
    }
}

/// Stand-in for `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Times a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, &mut |bencher: &mut Bencher| f(bencher, input));
        self
    }

    /// Times an unparameterized benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, &mut f);
        self
    }

    /// Ends the group (no-op beyond matching the Criterion API).
    pub fn finish(self) {}
}

/// Stand-in for `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Builds an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId { label: label.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Stand-in for `criterion::Bencher`: records the timing of `iter` calls.
#[derive(Debug, Default)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly and accumulates its timing.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up call.
        black_box(routine());
        let budget_start = Instant::now();
        while self.iterations < MAX_ITERATIONS && budget_start.elapsed() < MEASUREMENT_BUDGET {
            let start = Instant::now();
            black_box(routine());
            self.elapsed += start.elapsed();
            self.iterations += 1;
        }
    }
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    if bencher.iterations == 0 {
        println!("  {label}: no iterations recorded");
        return;
    }
    let mean = bencher.elapsed / bencher.iterations as u32;
    println!("  {label}: {mean:?} / iteration ({} iterations)", bencher.iterations);
}

/// Stand-in for `criterion_group!`: defines a function running each target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Stand-in for `criterion_main!`: defines `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations_and_time() {
        let mut bencher = Bencher::default();
        bencher.iter(|| black_box(2 + 2));
        assert!(bencher.iterations > 0);
        assert!(bencher.iterations <= MAX_ITERATIONS);
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("assembly", 240).label, "assembly/240");
        assert_eq!(BenchmarkId::from_parameter("vec1").label, "vec1");
        assert_eq!(BenchmarkId::from("spmv").label, "spmv");
    }

    #[test]
    fn group_and_function_api_compiles_and_runs() {
        let mut criterion = Criterion::default();
        let mut calls = 0;
        criterion.bench_function("noop", |b| {
            b.iter(|| ());
            calls += 1;
        });
        let mut group = criterion.benchmark_group("group");
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &input| {
            assert_eq!(input, 7);
            b.iter(|| black_box(input * 2));
        });
        group.finish();
        assert_eq!(calls, 1);
    }
}
