//! Offline API stub for `serde_json` (see `shims/README.md`).
//!
//! Serialization is disabled: [`to_string`] always returns [`Error`].  Tests
//! that exercise serde round-trips through this shim only assert that the
//! call *compiles and returns a `Result`*, which is exactly what the stub
//! provides.
//!
//! Deserialization into the dynamic [`Value`] type *is* implemented — a
//! small recursive-descent parser behind [`from_str`] — because the
//! workspace validates its own hand-emitted artifacts (`BENCH_*.json`,
//! trace sinks) in tests and checkers.  Typed `from_str::<T>` is not
//! supported; parse to [`Value`] and inspect with the `as_*` accessors.

use std::fmt;

/// Stand-in for `serde_json::Error`.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Error {
        Error { message: message.into() }
    }
}

impl Default for Error {
    fn default() -> Error {
        Error::new("serde_json shim: serialization disabled in offline builds")
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Stand-in for `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Stand-in for `serde_json::to_string`: always fails with [`Error`].
///
/// Deliberately unbounded in `T` — the offline `serde` shim derives produce
/// no trait impls, so requiring `T: Serialize` here would reject every type
/// in the workspace.
pub fn to_string<T: ?Sized>(_value: &T) -> Result<String> {
    Err(Error::default())
}

/// Dynamically typed JSON value — the shim's equivalent of
/// `serde_json::Value`, with the accessor subset the workspace uses.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`, like serde_json's lossy mode).
    Number(f64),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object, in document order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member `key` of an object (`None` for non-objects / absent keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, when it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `u64`, when it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as `&str`, when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`, when it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a slice, when it is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object members in document order, when it is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> Error {
        Error::new(format!("JSON parse error at byte {}: {what}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", byte as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.err("unexpected end of input"))? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => Ok(Value::String(self.parse_string()?)),
            b't' if self.eat_literal("true") => Ok(Value::Bool(true)),
            b'f' if self.eat_literal("false") => Ok(Value::Bool(false)),
            b'n' if self.eat_literal("null") => Ok(Value::Null),
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(self.err(&format!("unexpected character {:?}", other as char))),
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            members.push((key, self.parse_value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let escaped = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not reassembled; the
                            // workspace emitters only escape control chars.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("non-scalar \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(self.err(&format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input is &str, so slicing on
                    // char boundaries is safe via the chars iterator).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>().map(Value::Number).map_err(|_| self.err("invalid number"))
    }
}

/// Parses `text` into a [`Value`].  Unlike real serde_json this is not
/// generic — typed targets are not supported by the shim; parse to
/// [`Value`] and inspect with the accessors.
pub fn from_str(text: &str) -> Result<Value> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters after JSON value"));
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_string_reports_the_shim_error() {
        let err = super::to_string(&42).unwrap_err();
        assert!(err.to_string().contains("offline"));
    }

    #[test]
    fn parses_scalars_objects_and_arrays() {
        let v = from_str(r#"{"a": 1, "b": [true, null, "s"], "c": {"d": -2.5e3}}"#).unwrap();
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        let b = v.get("b").and_then(Value::as_array).unwrap();
        assert_eq!(b[0].as_bool(), Some(true));
        assert!(b[1].is_null());
        assert_eq!(b[2].as_str(), Some("s"));
        assert_eq!(v.get("c").and_then(|c| c.get("d")).and_then(Value::as_f64), Some(-2500.0));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parses_string_escapes() {
        let v = from_str(r#""a\"b\\c\n\tAé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\n\tA\u{e9}"));
    }

    #[test]
    fn number_forms_parse_to_f64() {
        let cases: [(&str, f64); 6] = [
            ("0", 0.0),
            ("-0.0", -0.0),
            ("3.25", 3.25),
            ("1e3", 1000.0),
            ("-4.9e-324", -4.9e-324),
            ("6.02214076e23", 6.02214076e23),
        ];
        for (text, expect) in cases {
            let v = from_str(text).unwrap();
            assert_eq!(v.as_f64().map(f64::to_bits), Some(expect.to_bits()), "{text}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "\"unterminated", "1 2", "{'a': 1}"] {
            assert!(from_str(bad).is_err(), "{bad:?} should not parse");
        }
        let err = from_str("[1,]").unwrap_err();
        assert!(err.to_string().contains("byte"), "{err}");
    }

    #[test]
    fn document_order_is_preserved_in_objects() {
        let v = from_str(r#"{"z": 1, "a": 2}"#).unwrap();
        let members = v.as_object().unwrap();
        assert_eq!(members[0].0, "z");
        assert_eq!(members[1].0, "a");
    }
}
