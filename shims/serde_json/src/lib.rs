//! Offline API stub for `serde_json` (see `shims/README.md`).
//!
//! Serialization is disabled: [`to_string`] always returns [`Error`].  Tests
//! that exercise serde round-trips through this shim only assert that the
//! call *compiles and returns a `Result`*, which is exactly what the stub
//! provides.

use std::fmt;

/// Stand-in for `serde_json::Error`.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json shim: serialization disabled in offline builds")
    }
}

impl std::error::Error for Error {}

/// Stand-in for `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Stand-in for `serde_json::to_string`: always fails with [`Error`].
///
/// Deliberately unbounded in `T` — the offline `serde` shim derives produce
/// no trait impls, so requiring `T: Serialize` here would reject every type
/// in the workspace.
pub fn to_string<T: ?Sized>(_value: &T) -> Result<String> {
    Err(Error)
}

#[cfg(test)]
mod tests {
    #[test]
    fn to_string_reports_the_shim_error() {
        let err = super::to_string(&42).unwrap_err();
        assert!(err.to_string().contains("offline"));
    }
}
