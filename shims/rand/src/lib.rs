//! Offline deterministic stand-in for the `rand` crate (see
//! `shims/README.md`).
//!
//! Implements the minimal API surface the workspace uses — `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`] and [`Rng::gen_range`] — on top of a
//! SplitMix64 generator.  The streams are deterministic and of good enough
//! quality for mesh jitter; they are **not** the same streams the real
//! `StdRng` produces, so meshes jittered with a given seed differ between
//! offline and online builds (both stay valid: every consumer asserts
//! geometric invariants, not exact coordinates).

use std::ops::Range;

/// Stand-in for `rand::SeedableRng`, reduced to the one constructor used in
/// this workspace.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws one value in `[low, high)` from `rng`.
    fn sample_from(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
}

/// Minimal object-safe core: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

impl SampleUniform for f64 {
    fn sample_from(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
}

impl SampleUniform for usize {
    fn sample_from(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range called with an empty range");
        low + (rng.next_u64() % (high - low) as u64) as usize
    }
}

impl SampleUniform for u64 {
    fn sample_from(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range called with an empty range");
        low + rng.next_u64() % (high - low)
    }
}

/// Stand-in for `rand::Rng`, reduced to `gen_range` over half-open ranges.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range called with an empty range");
        T::sample_from(self, range.start, range.end)
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15) }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen_range(0u64..1 << 40), b.gen_range(0u64..1 << 40));
        }
    }

    #[test]
    fn f64_range_is_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_stream_is_not_constant() {
        let mut rng = StdRng::seed_from_u64(3);
        let draws: Vec<f64> = (0..8).map(|_| rng.gen_range(0.0..1.0)).collect();
        assert!(draws.windows(2).any(|w| w[0] != w[1]));
    }
}
