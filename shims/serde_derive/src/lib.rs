//! No-op stand-in for `serde_derive`, used because the build environment has
//! no registry access (see `shims/README.md`).
//!
//! The derive macros accept the same invocation surface as the real crate —
//! including `#[serde(...)]` helper attributes — but expand to nothing, so
//! deriving `Serialize`/`Deserialize` merely parses.  Nothing in this
//! workspace calls serialization at run time; the derives document intent and
//! keep the sources compatible with the real `serde` when built online.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (with `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (with `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
