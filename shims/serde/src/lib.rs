//! Offline API stub for `serde`, used because the build environment has no
//! registry access (see `shims/README.md`).
//!
//! Exposes the `Serialize`/`Deserialize` trait names plus the derive macros
//! so `use serde::{Deserialize, Serialize}` and
//! `#[derive(Serialize, Deserialize)]` compile unchanged.  The traits are
//! empty markers and the derives expand to nothing: the workspace never
//! serializes at run time, it only annotates types for downstream users who
//! build with the real crates.io `serde`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
