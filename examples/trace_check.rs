//! CI's trace checker: validates a `simulate --trace` line-JSON log
//! (structure, timestamp order, per-rank span nesting) and optionally
//! gates the wall-clock overhead of tracing itself.
//!
//! ```text
//! cargo run --release --example trace_check -- <trace.jsonl> [--overhead]
//! ```
//!
//! `--overhead` times a lid-driven-cavity run twice — plain team vs traced
//! team, minimum over repetitions — and fails when tracing costs more than
//! `LV_TRACE_MAX_OVERHEAD` (default 0.05, the subsystem's ceiling).
//! Knobs: `LV_TRACE_OVERHEAD_N` (mesh edge, default 8),
//! `LV_TRACE_OVERHEAD_STEPS` (default 5), `LV_TRACE_OVERHEAD_REPS`
//! (default 3).  Exits non-zero when any check fails.

use alya_longvec::prelude::*;
use lv_metrics::{gate_trace_overhead, validate_trace_jsonl};
use lv_trace::time_min;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Minimum wall-clock of a full cavity run (fresh stepper per repetition,
/// so assembly and solves are all inside the timed region) on `team`.
fn cavity_seconds(team: &Team, n: usize, steps: usize, repetitions: usize) -> f64 {
    let scenario = Scenario::by_name("cavity", n).expect("cavity is registered");
    let mesh = scenario.build_mesh();
    time_min(repetitions, || {
        let mut stepper =
            Stepper::with_mesh(scenario.clone(), StepperConfig::default(), mesh.clone());
        stepper.run_on(team, steps).expect("the cavity run must converge");
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let path = match args.first() {
        Some(p) if p != "--overhead" => p.clone(),
        _ => {
            eprintln!("usage: trace_check <trace.jsonl> [--overhead]");
            std::process::exit(2);
        }
    };
    let mut ok = true;

    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("cannot read {path}: {err}");
            std::process::exit(1);
        }
    };
    let report = validate_trace_jsonl(&text);
    println!("trace log ({path}):");
    print!("{}", report.to_text());
    ok &= report.passed();

    if args.iter().any(|a| a == "--overhead") {
        let n = env_usize("LV_TRACE_OVERHEAD_N", 8);
        let steps = env_usize("LV_TRACE_OVERHEAD_STEPS", 5);
        let reps = env_usize("LV_TRACE_OVERHEAD_REPS", 3).max(1);
        let ceiling = env_f64("LV_TRACE_MAX_OVERHEAD", 0.05);
        let plain = cavity_seconds(&Team::new(1), n, steps, reps);
        let traced = cavity_seconds(&Team::with_trace(1, TraceConfig::default()), n, steps, reps);
        let report = gate_trace_overhead(plain, traced, ceiling);
        println!("tracing overhead (cavity {n}^3, {steps} steps, min of {reps}):");
        print!("{}", report.to_text());
        ok &= report.passed();
    }

    if ok {
        println!("trace check passed");
    } else {
        println!("trace check FAILED");
        std::process::exit(1);
    }
}
