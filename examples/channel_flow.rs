//! Channel flow: an inflow/outflow configuration (the external-aerodynamics
//! style workload that motivates the paper's introduction), used here to
//! compare the simulated behaviour of the mini-app across all three HPC
//! platforms for a single `VECTOR_SIZE`.
//!
//! ```text
//! cargo run --release --example channel_flow -- [n] [vector_size] [threads] [seq|batched]
//! ```

use alya_longvec::prelude::*;
use lv_kernel::{solve_momentum_on, MomentumPath};
use lv_mesh::Vec3;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(6);
    let vector_size: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(240);
    let threads: usize = std::env::args().nth(3).and_then(|s| s.parse().ok()).unwrap_or(1).max(1);
    let path = match std::env::args().nth(4) {
        None => MomentumPath::Batched,
        Some(arg) => MomentumPath::from_arg(&arg).unwrap_or_else(|| {
            eprintln!("unknown momentum path '{arg}' (expected seq|batched), using 'batched'");
            MomentumPath::Batched
        }),
    };

    let mesh = ChannelMeshBuilder::new(n, 4).with_jitter(0.1, 3).build();
    println!(
        "channel mesh: {} elements ({}x{}x{} cross-section blocks), VECTOR_SIZE = {}, \
         {} worker thread(s), {} momentum solve",
        mesh.num_elements(),
        4 * n,
        n,
        n,
        vector_size,
        threads,
        path.name()
    );

    // ----------------------------------------------------- numeric assembly
    // One shared pool runs both the colored assembly sweep and the solve.
    let config = KernelConfig::new(vector_size, OptLevel::Vec1).with_viscosity(1e-2);
    let assembly = NastinAssembly::new(mesh.clone(), config);
    let mut velocity = VectorField::constant(&mesh, Vec3::new(1.0, 0.0, 0.0));
    velocity.apply_boundary_conditions(&mesh, Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0));
    let pressure = Field::from_fn(&mesh, |p| 1.0 - p.x / 4.0);
    let team = Team::new(threads);
    let mut matrix = assembly.new_matrix();
    let mut rhs = vec![0.0; 3 * mesh.num_nodes()];
    let mut workspaces: Vec<lv_kernel::ElementWorkspace> =
        (0..threads).map(|_| lv_kernel::ElementWorkspace::new(vector_size)).collect();
    // Always the colored sweep (a one-worker team runs it serially), so the
    // printed numbers are identical for every thread count.
    let stats = assembly.assemble_parallel_into_on(
        &team,
        &velocity,
        &pressure,
        &mut matrix,
        &mut rhs,
        &mut workspaces,
    );
    assembly.apply_dirichlet(&mut matrix, &mut rhs);
    let solve = solve_momentum_on(&team, &matrix, &rhs, &SolveOptions::default(), path)
        .expect("momentum solve");
    println!(
        "assembled {} elements in {} chunks; momentum solve ({}): {:?} iterations, \
         worst residual {:.1e}\n",
        stats.elements,
        stats.chunks,
        path.name(),
        solve.iterations,
        solve.worst_residual
    );

    // ----------------------------------------- simulated cross-platform view
    println!("simulated mini-app on the three platforms (scalar vs auto-vectorized, VEC1 code):");
    println!(
        "{:>15} {:>16} {:>16} {:>10} {:>8} {:>8}",
        "platform", "scalar cycles", "vector cycles", "speed-up", "Mv", "AVL"
    );
    let app = SimulatedMiniApp::new(&mesh, config);
    for kind in PlatformKind::ALL {
        let platform = Platform::from_kind(kind);
        let scalar = app.run(platform, false);
        let vector = app.run(platform, true);
        let m = RunMetrics::from_counters(&vector.counters, platform.vlmax);
        println!(
            "{:>15} {:>16.0} {:>16.0} {:>9.2}x {:>8.2} {:>8.1}",
            kind.name(),
            scalar.total_cycles(),
            vector.total_cycles(),
            vector.speedup_over(&scalar),
            m.overall.vector_mix,
            m.overall.avg_vector_length,
        );
    }
    println!(
        "\nlong-vector machines reach high AVL; AVX-512 is capped at 8 elements per instruction"
    );
}
