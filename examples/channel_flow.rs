//! Channel flow: an inflow/outflow configuration (the external-aerodynamics
//! style workload that motivates the paper's introduction).  The time loop
//! is a thin wrapper over the fractional-step driver — predictor, pressure
//! Poisson (pinned on the outflow plane) and correction on one shared pool —
//! followed by the simulated cross-platform view of the mini-app.
//!
//! ```text
//! cargo run --release --example channel_flow -- [n] [steps] [threads] [seq|batched]
//! ```

use alya_longvec::prelude::*;
use lv_driver::{Scenario, ScenarioKind, Stepper, StepperConfig};
use lv_kernel::MomentumPath;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(6);
    let steps: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(3);
    let threads: usize = std::env::args().nth(3).and_then(|s| s.parse().ok()).unwrap_or(1).max(1);
    let path = match std::env::args().nth(4) {
        None => MomentumPath::Batched,
        Some(arg) => MomentumPath::from_arg(&arg).unwrap_or_else(|| {
            eprintln!("unknown momentum path '{arg}' (expected seq|batched), using 'batched'");
            MomentumPath::Batched
        }),
    };

    let scenario = Scenario::new(ScenarioKind::Channel, n);
    let config = StepperConfig::default().with_momentum_path(path);
    let mut stepper = Stepper::new(scenario.clone(), config);
    println!(
        "channel mesh: {} elements ({}x{}x{} cross-section blocks), {} steps, \
         {} worker thread(s), {} momentum solve",
        stepper.mesh().num_elements(),
        4 * n,
        n,
        n,
        steps,
        threads,
        path.name()
    );

    // ------------------------------------------------ fractional-step run
    // One shared pool drives assembly, momentum solve, Poisson projection
    // and correction; pressure is pinned to zero on the outflow plane.
    let team = Team::new(threads);
    println!(
        "{:>5} {:>9} {:>8} {:>8} {:>12} {:>12} {:>16}",
        "step", "dt", "mom-it", "poi-it", "div(pre)", "div(post)", "kinetic energy"
    );
    for _ in 0..steps {
        // Recovering steps: transient failures roll back and retry with Δt
        // halved; an exhausted budget exits non-zero with the structured
        // phase/step/residual diagnostic instead of panicking.
        let report = match stepper.step_recovering_on(&team) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        };
        println!(
            "{:>5} {:>9.5} {:>8} {:>8} {:>12.3e} {:>12.3e} {:>16.6}",
            report.step,
            report.dt,
            report.momentum_iterations,
            report.poisson_iterations,
            report.divergence_pre,
            report.divergence_post,
            report.kinetic_energy
        );
    }
    println!(
        "after {} steps: t = {:.3}, max |u| = {:.4}, max |p| = {:.4}\n",
        steps,
        stepper.state().time,
        stepper.state().velocity.max_magnitude(),
        stepper.state().pressure.max_abs()
    );

    // ----------------------------------------- simulated cross-platform view
    let kernel_config = KernelConfig::new(240, OptLevel::Vec1)
        .with_viscosity(scenario.viscosity)
        .with_density(scenario.density);
    println!("simulated mini-app on the three platforms (scalar vs auto-vectorized, VEC1 code):");
    println!(
        "{:>15} {:>16} {:>16} {:>10} {:>8} {:>8}",
        "platform", "scalar cycles", "vector cycles", "speed-up", "Mv", "AVL"
    );
    let app = SimulatedMiniApp::new(stepper.mesh(), kernel_config);
    for kind in PlatformKind::ALL {
        let platform = Platform::from_kind(kind);
        let scalar = app.run(platform, false);
        let vector = app.run(platform, true);
        let m = RunMetrics::from_counters(&vector.counters, platform.vlmax);
        println!(
            "{:>15} {:>16.0} {:>16.0} {:>9.2}x {:>8.2} {:>8.1}",
            kind.name(),
            scalar.total_cycles(),
            vector.total_cycles(),
            vector.speedup_over(&scalar),
            m.overall.vector_mix,
            m.overall.avg_vector_length,
        );
    }
    println!(
        "\nlong-vector machines reach high AVL; AVX-512 is capped at 8 elements per instruction"
    );
}
