//! The scenario-driven simulation entry point: select any registered flow,
//! run it through the fractional-step driver (predictor → pressure Poisson →
//! correction on one shared worker pool), and optionally checkpoint/restart.
//!
//! ```text
//! cargo run --release --example simulate -- <scenario> [n] [steps] [threads] [flags]
//! cargo run --release --example simulate -- list
//! ```
//!
//! Scenarios: `cavity`, `channel`, `taylor-green`, `shear-layer` (see
//! `list`).  Flags:
//!
//! * `--checkpoint <path>` — write a checkpoint ring generation after the
//!   last step (slots `<path>.0` … `<path>.K-1`, newest first);
//! * `--every <k>` — additionally checkpoint every `k` steps;
//! * `--ring <K>` — checkpoint ring depth (default 3; `0` writes a single
//!   plain `<path>` file, the pre-ring behavior);
//! * `--restart <path>` — resume from a checkpoint: a plain file if `<path>`
//!   exists, otherwise the newest loadable ring generation (corrupt newer
//!   generations are skipped and reported) — bitwise identical to the
//!   uninterrupted run either way, the driver's determinism contract;
//! * `--inject <spec>` — deterministic fault injection, e.g.
//!   `momentum-breakdown@3,poison-rhs@5,ckpt-flip@6,seed=42` (kinds:
//!   `momentum-breakdown`, `poisson-breakdown`, `mg-breakdown`,
//!   `poison-rhs`, `ckpt-flip`, `ckpt-truncate`, `stall`, `panic` — the
//!   last two target the `serve` supervision layer: here a `stall` only
//!   slows the step and a `panic` aborts);
//! * `--max-retries <r>` — Δt-backoff retry budget per step (default 3);
//! * `--fixed-dt <dt>` — fixed time step instead of the CFL controller;
//! * `--seq` — sequential momentum solves instead of the batched SpMM path;
//! * `--pressure-solver <cg|mgcg>` — pressure-Poisson setup: plain
//!   Jacobi-CG or the geometric-multigrid-preconditioned CG (the default;
//!   falls back to `cg` when the mesh is not a structured box lattice);
//! * `--trace <path>` — run with the `lv-trace` telemetry subsystem armed:
//!   spans over every phase, solver iteration and checkpoint I/O land in
//!   per-rank buffers, the end-of-run roofline summary prints to stdout and
//!   the event log is written to `<path>`;
//! * `--trace-format <jsonl|chrome>` — event-log format: the replayable
//!   line-JSON log (default) or a Chrome-tracing document for
//!   `chrome://tracing` / <https://ui.perfetto.dev>.
//!
//! `taylor-green` with `n = 0` (the default) runs the 8³ → 12³ → 16³
//! resolution sweep and reports the analytic L2 velocity error at a common
//! final time — the error must decrease monotonically with resolution.
//!
//! Any failure (unreadable checkpoint, exhausted retry budget, solver
//! breakdown past recovery) exits non-zero with a diagnostic naming the
//! phase, step and residual — never a panic.  Exit codes are distinct per
//! failure class so supervisors can react without parsing stderr:
//!
//! | code | meaning                                                        |
//! |------|----------------------------------------------------------------|
//! | 0    | run completed (all contracts held)                             |
//! | 1    | generic I/O or contract failure (trace/checkpoint write, sweep)|
//! | 2    | invalid CLI (unknown scenario/flag/spec)                       |
//! | 3    | Δt-retry budget exhausted / unrecoverable solver breakdown     |
//! | 4    | corrupt or mismatched restart checkpoint (`InvalidData`)       |

use alya_longvec::prelude::*;
use lv_driver::{
    load_checkpoint_traced, save_checkpoint_traced, Checkpoint, CheckpointRing, FaultKind,
    FaultPlan, PressureSolver, Scenario, SimState, Stepper, StepperConfig,
};
use lv_kernel::MomentumPath;

struct Cli {
    scenario: String,
    n: usize,
    steps: usize,
    threads: usize,
    checkpoint: Option<String>,
    every: usize,
    ring: usize,
    restart: Option<String>,
    fixed_dt: Option<f64>,
    path: MomentumPath,
    pressure_solver: PressureSolver,
    inject: Option<FaultPlan>,
    max_retries: usize,
    trace: Option<String>,
    trace_format: TraceFormat,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum TraceFormat {
    Jsonl,
    Chrome,
}

fn parse_cli() -> Cli {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cli = Cli {
        scenario: args.first().cloned().unwrap_or_else(|| "list".to_string()),
        n: 0,
        steps: 10,
        threads: 1,
        checkpoint: None,
        every: 0,
        ring: 3,
        restart: None,
        fixed_dt: None,
        path: MomentumPath::Batched,
        pressure_solver: PressureSolver::MgCg,
        inject: None,
        max_retries: 3,
        trace: None,
        trace_format: TraceFormat::Jsonl,
    };
    let mut positional = 0;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--checkpoint" => {
                cli.checkpoint = args.get(i + 1).cloned();
                i += 2;
            }
            "--every" => {
                cli.every = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(0);
                i += 2;
            }
            "--ring" => {
                cli.ring = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(3);
                i += 2;
            }
            "--restart" => {
                cli.restart = args.get(i + 1).cloned();
                i += 2;
            }
            "--inject" => {
                let spec = args.get(i + 1).cloned().unwrap_or_default();
                cli.inject = Some(FaultPlan::parse(&spec).unwrap_or_else(|e| {
                    eprintln!("--inject: {e}");
                    std::process::exit(2);
                }));
                i += 2;
            }
            "--max-retries" => {
                cli.max_retries = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(3);
                i += 2;
            }
            "--fixed-dt" => {
                cli.fixed_dt = args.get(i + 1).and_then(|s| s.parse().ok());
                i += 2;
            }
            "--trace" => {
                cli.trace = args.get(i + 1).cloned();
                i += 2;
            }
            "--trace-format" => {
                let name = args.get(i + 1).cloned().unwrap_or_default();
                cli.trace_format = match name.as_str() {
                    "jsonl" => TraceFormat::Jsonl,
                    "chrome" => TraceFormat::Chrome,
                    other => {
                        eprintln!("--trace-format must be 'jsonl' or 'chrome' (got '{other}')");
                        std::process::exit(2);
                    }
                };
                i += 2;
            }
            "--seq" => {
                cli.path = MomentumPath::Sequential;
                i += 1;
            }
            "--pressure-solver" => {
                let name = args.get(i + 1).cloned().unwrap_or_default();
                cli.pressure_solver = PressureSolver::from_name(&name).unwrap_or_else(|| {
                    eprintln!("--pressure-solver must be 'cg' or 'mgcg' (got '{name}')");
                    std::process::exit(2);
                });
                i += 2;
            }
            arg => {
                match positional {
                    0 => cli.n = arg.parse().unwrap_or(0),
                    1 => cli.steps = arg.parse().unwrap_or(10),
                    2 => cli.threads = arg.parse::<usize>().unwrap_or(1).max(1),
                    _ => eprintln!("ignoring extra argument '{arg}'"),
                }
                positional += 1;
                i += 1;
            }
        }
    }
    if cli.every > 0 && cli.checkpoint.is_none() {
        eprintln!("--every needs --checkpoint <path> to know where to write");
        std::process::exit(2);
    }
    cli
}

fn print_registry() {
    println!("registered scenarios (cargo run --release --example simulate -- <name> ...):\n");
    for scenario in Scenario::registry() {
        println!("  {:<14} {}", scenario.kind.name(), scenario.kind.describe());
    }
    println!("\nusage: simulate <scenario> [n] [steps] [threads] [--checkpoint p] [--every k]");
    println!("       [--ring K] [--restart p] [--fixed-dt dt] [--seq]");
    println!("       [--pressure-solver cg|mgcg] [--inject spec] [--max-retries r]");
    println!("       [--trace p] [--trace-format jsonl|chrome]");
}

/// Builds the worker team: traced (per-rank event buffers armed) when
/// `--trace` asked for telemetry, plain otherwise.
fn make_team(cli: &Cli) -> Team {
    if cli.trace.is_some() {
        Team::with_trace(cli.threads, TraceConfig::default())
    } else {
        Team::new(cli.threads)
    }
}

/// Prints the roofline summary and writes the event log of a traced run.
fn finish_trace(team: &mut Team, cli: &Cli) -> Result<(), String> {
    let Some(path) = &cli.trace else { return Ok(()) };
    let trace = team.trace_mut().expect("--trace armed the team's trace");
    let summary = RunSummary::from_trace(trace);
    println!("\n{}", summary.to_text());
    let text = match cli.trace_format {
        TraceFormat::Jsonl => trace.write_jsonl(),
        TraceFormat::Chrome => trace.write_chrome(),
    };
    std::fs::write(path, text).map_err(|e| format!("writing trace to {path} failed: {e}"))?;
    println!(
        "trace ({}) -> {path}",
        if cli.trace_format == TraceFormat::Jsonl { "jsonl" } else { "chrome" }
    );
    Ok(())
}

fn stepper_config(cli: &Cli) -> StepperConfig {
    let mut config = StepperConfig::default()
        .with_momentum_path(cli.path)
        .with_pressure_solver(cli.pressure_solver)
        .with_max_dt_retries(cli.max_retries);
    if let Some(dt) = cli.fixed_dt {
        config = config.with_fixed_dt(dt);
    }
    if let Some(plan) = &cli.inject {
        config = config.with_fault_plan(plan.clone());
    }
    config
}

/// Writes a checkpoint generation (ring-rotated, or a plain file with
/// `--ring 0`) and applies any scheduled checkpoint corruption fault to the
/// freshly written newest slot.  A traced run records the write as a
/// `driver/checkpoint/save` span.
fn write_checkpoint(
    cli_path: &str,
    ring_depth: usize,
    scenario: &Scenario,
    state: &SimState,
    plan: &mut Option<FaultPlan>,
    trace: Option<&Trace>,
) -> Result<std::path::PathBuf, String> {
    let newest = if ring_depth == 0 {
        save_checkpoint_traced(cli_path, scenario, state, trace)
            .map_err(|e| format!("checkpoint write to {cli_path} failed: {e}"))?;
        std::path::PathBuf::from(cli_path)
    } else {
        CheckpointRing::new(cli_path, ring_depth)
            .save_traced(scenario, state, trace)
            .map_err(|e| format!("checkpoint ring save at {cli_path} failed: {e}"))?
    };
    if let Some(plan) = plan {
        if let Some(kind) = plan.fire_checkpoint(state.step) {
            let bytes = std::fs::read(&newest)
                .map_err(|e| format!("injecting {} fault: {e}", kind.name()))?;
            let corrupted = match kind {
                FaultKind::CheckpointFlip => {
                    let mut bytes = bytes;
                    let at = plan.index(state.step, 1, bytes.len());
                    bytes[at] ^= 0x01;
                    println!("      [inject] flipped bit 0 of byte {at} in {}", newest.display());
                    bytes
                }
                FaultKind::CheckpointTruncate => {
                    println!(
                        "      [inject] truncated {} to {} bytes",
                        newest.display(),
                        bytes.len() / 2
                    );
                    bytes[..bytes.len() / 2].to_vec()
                }
                _ => unreachable!("fire_checkpoint only yields checkpoint faults"),
            };
            std::fs::write(&newest, corrupted)
                .map_err(|e| format!("injecting {} fault: {e}", kind.name()))?;
        }
    }
    Ok(newest)
}

/// Loads a restart checkpoint: the plain `<path>` file when it exists,
/// otherwise the newest loadable generation of the `<path>.*` ring.
fn load_restart(
    path: &str,
    ring_depth: usize,
    trace: Option<&Trace>,
) -> Result<Checkpoint, Failure> {
    if std::path::Path::new(path).exists() {
        return load_checkpoint_traced(path, trace)
            .map_err(|e| Failure::checkpoint(&e, format!("checkpoint {path} unreadable: {e}")));
    }
    let ring = CheckpointRing::new(path, ring_depth.max(1));
    let recovery = ring.load_latest_traced(trace).map_err(|e| {
        Failure::checkpoint(&e, format!("no usable checkpoint at {path} or its ring: {e}"))
    })?;
    for (slot, why) in &recovery.skipped {
        println!("skipping damaged checkpoint generation {}: {why}", slot.display());
    }
    println!(
        "recovered from ring generation {} ({})",
        recovery.generation,
        recovery.path.display()
    );
    Ok(recovery.checkpoint)
}

/// The Taylor–Green convergence sweep: same physics and final time on three
/// meshes, reporting the analytic L2 velocity error and the projection's
/// divergence reduction.
fn taylor_green_sweep(cli: &Cli) -> Result<(), Failure> {
    let mut team = make_team(cli);
    println!(
        "Taylor–Green resolution sweep ({} steps, {} worker thread(s), {} momentum solve):\n",
        cli.steps,
        cli.threads,
        cli.path.name()
    );
    println!(
        "{:>6} {:>10} {:>12} {:>15} {:>15} {:>8}",
        "mesh", "final t", "L2 error", "‖d‖ predictor", "‖d‖ projected", "drop"
    );
    let mut errors = Vec::new();
    let mut drops = Vec::new();
    for n in [8usize, 12, 16] {
        let scenario = Scenario::by_name("taylor-green", n).expect("registered");
        // Fixed Δt shared by all resolutions so every run reaches the same
        // final time and the error differences are spatial.
        let config = stepper_config(cli).with_fixed_dt(cli.fixed_dt.unwrap_or(0.01));
        let mut stepper = Stepper::new(scenario, config);
        let reports = stepper.run_recovering_on(&team, cli.steps).map_err(Failure::retries)?;
        // The step-1 divergence pair is the clean predictor-vs-projected
        // comparison: its predictor field is the raw momentum solve of an
        // unprojected state (later steps start already divergence-reduced).
        let first = reports.first().ok_or("taylor-green sweep needs at least one step")?;
        let error = stepper
            .analytic_velocity_error()
            .ok_or("taylor-green must report an analytic error")?;
        let drop = first.divergence_pre / first.divergence_post;
        println!(
            "{:>4}^3 {:>10.4} {:>12.4e} {:>15.4e} {:>15.4e} {:>7.1}x",
            n,
            stepper.state().time,
            error,
            first.divergence_pre,
            first.divergence_post,
            drop
        );
        errors.push(error);
        drops.push(drop);
    }
    let monotone = errors.windows(2).all(|w| w[1] < w[0]);
    println!(
        "\nanalytic L2 velocity error decreases monotonically with resolution: {}",
        if monotone { "yes" } else { "NO — spatial convergence broken" }
    );
    let reduced = drops.iter().skip(1).all(|&d| d >= 10.0);
    println!(
        "projection reduces the predictor's discrete divergence by >=10x (12^3, 16^3): {}",
        if reduced { "yes" } else { "NO — projection broken" }
    );
    if !monotone || !reduced {
        return Err("taylor-green sweep contract violated (see the report above)".into());
    }
    Ok(finish_trace(&mut team, cli)?)
}

/// A run failure carrying its process exit code (see the module docs):
/// `1` generic I/O or contract failure, `3` exhausted Δt-retry budget,
/// `4` corrupt or mismatched checkpoint.  CLI errors exit `2` straight
/// from the parser.
struct Failure {
    code: i32,
    message: String,
}

impl From<String> for Failure {
    fn from(message: String) -> Failure {
        Failure { code: 1, message }
    }
}

impl From<&str> for Failure {
    fn from(message: &str) -> Failure {
        Failure { code: 1, message: message.to_string() }
    }
}

impl Failure {
    /// Exhausted per-step retry budget (or unrecoverable solver breakdown).
    fn retries(error: lv_driver::RunError) -> Failure {
        Failure { code: 3, message: error.to_string() }
    }

    /// Classifies a checkpoint error: `InvalidData` (damaged or mismatched
    /// restart data) exits 4, any other I/O failure exits 1.
    fn checkpoint(error: &std::io::Error, message: String) -> Failure {
        let code = if error.kind() == std::io::ErrorKind::InvalidData { 4 } else { 1 };
        Failure { code, message }
    }
}

fn main() {
    if let Err(failure) = run() {
        eprintln!("error: {}", failure.message);
        std::process::exit(failure.code);
    }
}

fn run() -> Result<(), Failure> {
    let cli = parse_cli();
    if cli.scenario == "list" {
        print_registry();
        return Ok(());
    }
    let Some(kind) = lv_driver::ScenarioKind::from_name(&cli.scenario) else {
        eprintln!("unknown scenario '{}'\n", cli.scenario);
        print_registry();
        std::process::exit(2);
    };
    if kind == lv_driver::ScenarioKind::TaylorGreenVortex && cli.n == 0 && cli.restart.is_none() {
        return taylor_green_sweep(&cli);
    }

    let n = if cli.n == 0 { 8 } else { cli.n };
    let scenario = Scenario::new(kind, n);
    let config = stepper_config(&cli);
    // The CLI keeps its own fault-plan copy for the checkpoint-corruption
    // faults; the stepper's clone handles the solver faults (the kinds are
    // disjoint, so double-cloning cannot double-fire anything).
    let mut cli_plan = cli.inject.clone();
    let mut team = make_team(&cli);
    let mut stepper = match &cli.restart {
        None => Stepper::new(scenario.clone(), config),
        Some(path) => {
            let checkpoint = load_restart(path, cli.ring, team.trace())?;
            checkpoint.validate_scenario(&scenario).map_err(|e| {
                Failure::checkpoint(
                    &e,
                    format!("checkpoint {path} does not fit the requested run: {e}"),
                )
            })?;
            let mesh = scenario.build_mesh();
            let state = checkpoint.into_state(&mesh).map_err(|e| {
                Failure::checkpoint(&e, format!("checkpoint {path} does not fit the mesh: {e}"))
            })?;
            println!(
                "restarting '{}' from {path}: step {}, t = {:.4}",
                scenario.kind.name(),
                state.step,
                state.time
            );
            Stepper::from_state(scenario.clone(), config, mesh, state)
        }
    };

    let mesh_elements = stepper.mesh().num_elements();
    println!(
        "scenario '{}': {} elements, nu = {}, {} steps, {} worker thread(s), {} momentum solve, \
         {} pressure solve",
        scenario.kind.name(),
        mesh_elements,
        scenario.viscosity,
        cli.steps,
        cli.threads,
        cli.path.name(),
        stepper.pressure_solver().name()
    );
    println!(
        "{:>5} {:>9} {:>9} {:>7} {:>7} {:>12} {:>12} {:>14}",
        "step", "time", "dt", "mom-it", "poi-it", "div(pre)", "div(post)", "kinetic energy"
    );

    let final_step = stepper.state().step + cli.steps as u64;
    let mut final_saved = false;
    for _ in 0..cli.steps {
        let report = stepper.step_recovering_on(&team).map_err(Failure::retries)?;
        println!(
            "{:>5} {:>9.4} {:>9.5} {:>7} {:>7} {:>12.3e} {:>12.3e} {:>14.6}",
            report.step,
            report.time,
            report.dt,
            report.momentum_iterations,
            report.poisson_iterations,
            report.divergence_pre,
            report.divergence_post,
            report.kinetic_energy
        );
        if report.retries > 0 {
            println!(
                "      [recovered] {} rollback(s), step completed at Δt = {:.5}",
                report.retries, report.dt
            );
        }
        if report.poisson_fallbacks > 0 {
            println!(
                "      [recovered] {} projection sweep(s) fell back from MG-CG to plain CG",
                report.poisson_fallbacks
            );
        }
        if cli.every > 0 && report.step % cli.every as u64 == 0 {
            if let Some(path) = &cli.checkpoint {
                let newest = write_checkpoint(
                    path,
                    cli.ring,
                    &scenario,
                    stepper.state(),
                    &mut cli_plan,
                    team.trace(),
                )?;
                println!("      checkpoint -> {} (step {})", newest.display(), report.step);
                final_saved = stepper.state().step == final_step;
            }
        }
    }
    if let Some(err) = stepper.analytic_velocity_error() {
        println!("\nanalytic L2 velocity error at t = {:.4}: {err:.4e}", stepper.state().time);
    }
    if let Some(path) = &cli.checkpoint {
        if !final_saved {
            let newest = write_checkpoint(
                path,
                cli.ring,
                &scenario,
                stepper.state(),
                &mut cli_plan,
                team.trace(),
            )?;
            println!("\nfinal checkpoint -> {} (step {})", newest.display(), stepper.state().step);
        }
    }
    println!(
        "\nfinal state: t = {:.4}, max |u| = {:.4}, kinetic energy = {:.6}, ‖div u‖ = {:.3e}",
        stepper.state().time,
        stepper.state().velocity.max_magnitude(),
        stepper.kinetic_energy(),
        stepper.divergence_norm()
    );
    Ok(finish_trace(&mut team, &cli)?)
}
