//! The scenario-driven simulation entry point: select any registered flow,
//! run it through the fractional-step driver (predictor → pressure Poisson →
//! correction on one shared worker pool), and optionally checkpoint/restart.
//!
//! ```text
//! cargo run --release --example simulate -- <scenario> [n] [steps] [threads] [flags]
//! cargo run --release --example simulate -- list
//! ```
//!
//! Scenarios: `cavity`, `channel`, `taylor-green`, `shear-layer` (see
//! `list`).  Flags:
//!
//! * `--checkpoint <path>` — write a binary checkpoint after the last step;
//! * `--every <k>` — additionally checkpoint every `k` steps;
//! * `--restart <path>` — resume from a checkpoint (bitwise identical to the
//!   uninterrupted run — the driver's determinism contract);
//! * `--fixed-dt <dt>` — fixed time step instead of the CFL controller;
//! * `--seq` — sequential momentum solves instead of the batched SpMM path;
//! * `--pressure-solver <cg|mgcg>` — pressure-Poisson setup: plain
//!   Jacobi-CG or the geometric-multigrid-preconditioned CG (the default;
//!   falls back to `cg` when the mesh is not a structured box lattice).
//!
//! `taylor-green` with `n = 0` (the default) runs the 8³ → 12³ → 16³
//! resolution sweep and reports the analytic L2 velocity error at a common
//! final time — the error must decrease monotonically with resolution.

use alya_longvec::prelude::*;
use lv_driver::{
    load_checkpoint, save_checkpoint, PressureSolver, Scenario, Stepper, StepperConfig,
};
use lv_kernel::MomentumPath;

struct Cli {
    scenario: String,
    n: usize,
    steps: usize,
    threads: usize,
    checkpoint: Option<String>,
    every: usize,
    restart: Option<String>,
    fixed_dt: Option<f64>,
    path: MomentumPath,
    pressure_solver: PressureSolver,
}

fn parse_cli() -> Cli {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cli = Cli {
        scenario: args.first().cloned().unwrap_or_else(|| "list".to_string()),
        n: 0,
        steps: 10,
        threads: 1,
        checkpoint: None,
        every: 0,
        restart: None,
        fixed_dt: None,
        path: MomentumPath::Batched,
        pressure_solver: PressureSolver::MgCg,
    };
    let mut positional = 0;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--checkpoint" => {
                cli.checkpoint = args.get(i + 1).cloned();
                i += 2;
            }
            "--every" => {
                cli.every = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(0);
                i += 2;
            }
            "--restart" => {
                cli.restart = args.get(i + 1).cloned();
                i += 2;
            }
            "--fixed-dt" => {
                cli.fixed_dt = args.get(i + 1).and_then(|s| s.parse().ok());
                i += 2;
            }
            "--seq" => {
                cli.path = MomentumPath::Sequential;
                i += 1;
            }
            "--pressure-solver" => {
                let name = args.get(i + 1).cloned().unwrap_or_default();
                cli.pressure_solver = PressureSolver::from_name(&name).unwrap_or_else(|| {
                    eprintln!("--pressure-solver must be 'cg' or 'mgcg' (got '{name}')");
                    std::process::exit(2);
                });
                i += 2;
            }
            arg => {
                match positional {
                    0 => cli.n = arg.parse().unwrap_or(0),
                    1 => cli.steps = arg.parse().unwrap_or(10),
                    2 => cli.threads = arg.parse::<usize>().unwrap_or(1).max(1),
                    _ => eprintln!("ignoring extra argument '{arg}'"),
                }
                positional += 1;
                i += 1;
            }
        }
    }
    if cli.every > 0 && cli.checkpoint.is_none() {
        eprintln!("--every needs --checkpoint <path> to know where to write");
        std::process::exit(2);
    }
    cli
}

fn print_registry() {
    println!("registered scenarios (cargo run --release --example simulate -- <name> ...):\n");
    for scenario in Scenario::registry() {
        println!("  {:<14} {}", scenario.kind.name(), scenario.kind.describe());
    }
    println!("\nusage: simulate <scenario> [n] [steps] [threads] [--checkpoint p] [--every k]");
    println!("       [--restart p] [--fixed-dt dt] [--seq] [--pressure-solver cg|mgcg]");
}

fn stepper_config(cli: &Cli) -> StepperConfig {
    let mut config = StepperConfig::default()
        .with_momentum_path(cli.path)
        .with_pressure_solver(cli.pressure_solver);
    if let Some(dt) = cli.fixed_dt {
        config = config.with_fixed_dt(dt);
    }
    config
}

/// The Taylor–Green convergence sweep: same physics and final time on three
/// meshes, reporting the analytic L2 velocity error and the projection's
/// divergence reduction.
fn taylor_green_sweep(cli: &Cli) {
    let team = Team::new(cli.threads);
    println!(
        "Taylor–Green resolution sweep ({} steps, {} worker thread(s), {} momentum solve):\n",
        cli.steps,
        cli.threads,
        cli.path.name()
    );
    println!(
        "{:>6} {:>10} {:>12} {:>15} {:>15} {:>8}",
        "mesh", "final t", "L2 error", "‖d‖ predictor", "‖d‖ projected", "drop"
    );
    let mut errors = Vec::new();
    let mut drops = Vec::new();
    for n in [8usize, 12, 16] {
        let scenario = Scenario::by_name("taylor-green", n).expect("registered");
        // Fixed Δt shared by all resolutions so every run reaches the same
        // final time and the error differences are spatial.
        let config = stepper_config(cli).with_fixed_dt(cli.fixed_dt.unwrap_or(0.01));
        let mut stepper = Stepper::new(scenario, config);
        let reports = stepper.run_on(&team, cli.steps).expect("step must converge");
        // The step-1 divergence pair is the clean predictor-vs-projected
        // comparison: its predictor field is the raw momentum solve of an
        // unprojected state (later steps start already divergence-reduced).
        let first = reports.first().expect("at least one step");
        let error = stepper.analytic_velocity_error().expect("taylor-green is analytic");
        let drop = first.divergence_pre / first.divergence_post;
        println!(
            "{:>4}^3 {:>10.4} {:>12.4e} {:>15.4e} {:>15.4e} {:>7.1}x",
            n,
            stepper.state().time,
            error,
            first.divergence_pre,
            first.divergence_post,
            drop
        );
        errors.push(error);
        drops.push(drop);
    }
    let monotone = errors.windows(2).all(|w| w[1] < w[0]);
    println!(
        "\nanalytic L2 velocity error decreases monotonically with resolution: {}",
        if monotone { "yes" } else { "NO — spatial convergence broken" }
    );
    let reduced = drops.iter().skip(1).all(|&d| d >= 10.0);
    println!(
        "projection reduces the predictor's discrete divergence by >=10x (12^3, 16^3): {}",
        if reduced { "yes" } else { "NO — projection broken" }
    );
    if !monotone || !reduced {
        std::process::exit(1);
    }
}

fn main() {
    let cli = parse_cli();
    if cli.scenario == "list" {
        print_registry();
        return;
    }
    let Some(kind) = lv_driver::ScenarioKind::from_name(&cli.scenario) else {
        eprintln!("unknown scenario '{}'\n", cli.scenario);
        print_registry();
        std::process::exit(2);
    };
    if kind == lv_driver::ScenarioKind::TaylorGreenVortex && cli.n == 0 && cli.restart.is_none() {
        taylor_green_sweep(&cli);
        return;
    }

    let n = if cli.n == 0 { 8 } else { cli.n };
    let scenario = Scenario::new(kind, n);
    let config = stepper_config(&cli);
    let mut stepper = match &cli.restart {
        None => Stepper::new(scenario.clone(), config),
        Some(path) => {
            let checkpoint = load_checkpoint(path).expect("readable checkpoint");
            checkpoint.validate_scenario(&scenario).expect("checkpoint matches the scenario");
            let mesh = scenario.build_mesh();
            let state = checkpoint.into_state(&mesh).expect("checkpoint matches the mesh");
            println!(
                "restarting '{}' from {path}: step {}, t = {:.4}",
                scenario.kind.name(),
                state.step,
                state.time
            );
            Stepper::from_state(scenario.clone(), config, mesh, state)
        }
    };

    let mesh_elements = stepper.mesh().num_elements();
    println!(
        "scenario '{}': {} elements, nu = {}, {} steps, {} worker thread(s), {} momentum solve, \
         {} pressure solve",
        scenario.kind.name(),
        mesh_elements,
        scenario.viscosity,
        cli.steps,
        cli.threads,
        cli.path.name(),
        stepper.pressure_solver().name()
    );
    println!(
        "{:>5} {:>9} {:>9} {:>7} {:>7} {:>12} {:>12} {:>14}",
        "step", "time", "dt", "mom-it", "poi-it", "div(pre)", "div(post)", "kinetic energy"
    );

    let team = Team::new(cli.threads);
    for _ in 0..cli.steps {
        let report = stepper.step_on(&team).expect("step must converge");
        println!(
            "{:>5} {:>9.4} {:>9.5} {:>7} {:>7} {:>12.3e} {:>12.3e} {:>14.6}",
            report.step,
            report.time,
            report.dt,
            report.momentum_iterations,
            report.poisson_iterations,
            report.divergence_pre,
            report.divergence_post,
            report.kinetic_energy
        );
        if cli.every > 0 && report.step % cli.every as u64 == 0 {
            if let Some(path) = &cli.checkpoint {
                save_checkpoint(path, &scenario, stepper.state()).expect("checkpoint write");
                println!("      checkpoint -> {path} (step {})", report.step);
            }
        }
    }
    if let Some(err) = stepper.analytic_velocity_error() {
        println!("\nanalytic L2 velocity error at t = {:.4}: {err:.4e}", stepper.state().time);
    }
    if let Some(path) = &cli.checkpoint {
        save_checkpoint(path, &scenario, stepper.state()).expect("checkpoint write");
        println!("\nfinal checkpoint -> {path} (step {})", stepper.state().step);
    }
    println!(
        "\nfinal state: t = {:.4}, max |u| = {:.4}, kinetic energy = {:.6}, ‖div u‖ = {:.3e}",
        stepper.state().time,
        stepper.state().velocity.max_magnitude(),
        stepper.kinetic_energy(),
        stepper.divergence_norm()
    );
}
