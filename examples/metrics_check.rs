//! CI's metrics checker: validates a Prometheus text exposition scraped
//! from `serve metrics --format prom` (TYPE declarations, sample syntax,
//! counter naming, cumulative histogram buckets).
//!
//! ```text
//! serve metrics --journal jobs.jsonl --format prom > metrics.prom
//! cargo run --release --example metrics_check -- metrics.prom
//! ```
//!
//! Pass `-` to read the exposition from stdin, so CI can pipe the scrape
//! straight through without a temp file.  Exits non-zero when any check
//! fails.
//!
//! Optional `--expect <name>` flags (repeatable) additionally require a
//! sample of that exact metric name to be present — CI uses this to pin
//! the deterministic counter subset (`fleet_jobs_submitted_total`, ...)
//! so a renamed or dropped metric fails the scrape, not a dashboard.

use lv_metrics::validate_prometheus;
use std::io::Read;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut expect: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--expect" => {
                match args.get(i + 1) {
                    Some(name) => expect.push(name.clone()),
                    None => {
                        eprintln!("--expect needs a metric name");
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            arg => {
                if path.is_some() {
                    eprintln!("usage: metrics_check <metrics.prom|-> [--expect NAME]...");
                    std::process::exit(2);
                }
                path = Some(arg.to_string());
                i += 1;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: metrics_check <metrics.prom|-> [--expect NAME]...");
        std::process::exit(2);
    };

    let text = if path == "-" {
        let mut text = String::new();
        if let Err(err) = std::io::stdin().read_to_string(&mut text) {
            eprintln!("cannot read stdin: {err}");
            std::process::exit(1);
        }
        text
    } else {
        match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("cannot read {path}: {err}");
                std::process::exit(1);
            }
        }
    };

    let mut report = validate_prometheus(&text);
    for name in &expect {
        // A sample line starts with the bare name followed by a space or a
        // label block; a HELP/TYPE comment alone does not count.
        let present = text.lines().any(|line| {
            line.strip_prefix(name.as_str())
                .is_some_and(|rest| rest.starts_with(' ') || rest.starts_with('{'))
        });
        report.push(
            format!("metric {name} present"),
            present,
            if present { "found" } else { "no sample with that name" },
        );
    }

    println!("metrics exposition ({path}):");
    print!("{}", report.to_text());
    if report.passed() {
        println!("metrics check passed");
    } else {
        println!("metrics check FAILED");
        std::process::exit(1);
    }
}
