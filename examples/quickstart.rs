//! Quickstart: assemble the Navier–Stokes system on a small cavity mesh,
//! solve one momentum system, then simulate the same assembly kernel on the
//! RISC-V VEC prototype model and print the Section 2.2 vectorization
//! metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use alya_longvec::prelude::*;
use lv_mesh::Vec3;
use lv_sim::counters::PhaseId;

fn main() {
    // ---------------------------------------------------------------- mesh
    let mesh = BoxMeshBuilder::new(10, 10, 10).lid_driven_cavity().with_jitter(0.1, 7).build();
    println!(
        "mesh: {} hexahedral elements, {} nodes, volume {:.3}",
        mesh.num_elements(),
        mesh.num_nodes(),
        mesh.total_volume()
    );

    // ------------------------------------------------------ numeric assembly
    let config = KernelConfig::new(240, OptLevel::Vec1);
    let assembly = NastinAssembly::new(mesh.clone(), config);
    let mut velocity = VectorField::taylor_green(&mesh);
    velocity.apply_boundary_conditions(&mesh, Vec3::new(1.0, 0.0, 0.0), Vec3::ZERO);
    let pressure = Field::zeros(&mesh);

    let mut output = assembly.assemble(&velocity, &pressure);
    assembly.apply_dirichlet(&mut output.matrix, &mut output.rhs);
    println!(
        "assembly: {} chunks of VECTOR_SIZE={}, {:.1} MFLOP, matrix nnz = {}",
        output.stats.chunks,
        config.vector_size,
        output.stats.flops / 1e6,
        output.matrix.nnz()
    );

    // Solve the x-momentum increment system.
    let n = mesh.num_nodes();
    let bx: Vec<f64> = (0..n).map(|i| output.rhs[3 * i]).collect();
    let solve = bicgstab(&output.matrix, &bx, &SolveOptions::default())
        .expect("momentum system must be solvable");
    println!(
        "solver: BiCGSTAB converged in {} iterations (residual {:.2e})",
        solve.iterations,
        solve.final_residual()
    );

    // --------------------------------------------------- simulated execution
    println!("\nsimulated execution on the RISC-V VEC prototype (VECTOR_SIZE = 240):");
    let app = SimulatedMiniApp::new(&mesh, config);
    let scalar = app.run(Platform::riscv_vec(), false);
    let vector = app.run(Platform::riscv_vec(), true);
    let metrics = RunMetrics::from_counters(&vector.counters, Platform::riscv_vec().vlmax);

    println!(
        "  scalar: {:>14.0} cycles   vectorized: {:>14.0} cycles   speed-up: {:.2}x",
        scalar.total_cycles(),
        vector.total_cycles(),
        vector.speedup_over(&scalar)
    );
    println!("  per-phase metrics (vectorized run):");
    println!("  {:>7} {:>10} {:>8} {:>8} {:>8} {:>8}", "phase", "cycles%", "Mv", "Av", "AVL", "Ev");
    for p in &metrics.phases {
        println!(
            "  {:>7} {:>9.1}% {:>8.2} {:>8.2} {:>8.1} {:>8.2}",
            p.phase,
            100.0 * p.cycle_share,
            p.vector_mix,
            p.vector_activity,
            p.avg_vector_length,
            p.occupancy
        );
    }
    let p6 = vector.counters.phase(PhaseId::new(6));
    println!(
        "  phase 6 executed {} vector instructions at vCPI {:.1}",
        p6.vector_instructions,
        p6.vector_cpi()
    );
}
