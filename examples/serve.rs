//! The supervised simulation service CLI: submit jobs into a journaled
//! queue, drain them over a pool of worker teams, and inspect the fleet.
//!
//! ```text
//! cargo run --release --example serve -- submit --journal jobs.jsonl cavity 8 20
//! cargo run --release --example serve -- run    --journal jobs.jsonl --workers 2 --endpoint
//! cargo run --release --example serve -- status --journal jobs.jsonl
//! cargo run --release --example serve -- metrics --journal jobs.jsonl --format prom
//! cargo run --release --example serve -- timeline --journal jobs.jsonl --all
//! ```
//!
//! Subcommands:
//!
//! * `submit --journal <path> <scenario> [n] [steps]` — append one job to
//!   the journal.  Flags: `--id <name>` (default `job-<k>`), `--inject
//!   <spec>` (the `simulate` fault grammar, e.g. `panic@5,seed=7`),
//!   `--ckpt-dir <dir>` (default `<journal>.ckpt.d`);
//! * `run` — replay the journal, then drain every pending job to
//!   completion.  Flags: `--workers <M>` (default 2), `--threads <T>` per
//!   worker (default 1), `--slice <K>` steps per slice (default 4),
//!   `--watchdog-ms <W>` per-step deadline (default 30000),
//!   `--max-retries <R>` (default 3), `--max-slices <N>` (graceful drain
//!   for tests), `--ring <K>` checkpoint depth (default 3), `--ckpt-dir`,
//!   `--endpoint` (serve the introspection socket at `<journal>.sock`),
//!   `--trace-dir <dir>` (write per-worker span logs for `timeline
//!   --chrome`);
//! * `status [--follow]` — one-line JSON fleet summary.  Asks the live
//!   supervisor over `<journal>.sock` first; when no supervisor is
//!   listening it replays the journal read-only and reports the ledger
//!   with `"live": false` instead of failing.  `--follow` streams a status
//!   line every half second while the supervisor lives, then prints the
//!   final offline snapshot.  A missing journal reports `no journal` and
//!   still exits 0 — absence of a fleet is an answer, not an error;
//! * `metrics [--format prom|json]` — the fleet-metrics snapshot (default
//!   json).  Socket first; then the `<journal>.metrics.json` document the
//!   dead supervisor flushed at its last checkpoint (json only); finally a
//!   read-only journal fold, which reconstructs the deterministic counters
//!   exactly but leaves host-dependent histograms empty;
//! * `timeline <job>|--all [--chrome] [--trace-dir <dir>]` — journal-derived
//!   timelines.  Text mode prints one line per record (`--all`) or one job's
//!   records; `--chrome` emits the merged Chrome-tracing document for the
//!   whole fleet (slices from the journal, one pid per worker, plus any
//!   per-worker span logs found in `--trace-dir`).
//!
//! `run` always prints the replay line (`journal replay: N job(s): ...`) —
//! after a crashed supervisor it reports how many jobs were recovered —
//! and exits `0` when no job failed, `1` when any did.  The inspection
//! subcommands (`status`, `metrics`, `timeline`) are read-only and exit
//! `0` whenever the journal could be reported on (even when missing or
//! with no supervisor alive), `1` on a corrupt journal.  CLI errors exit
//! `2`.  Trajectories are bitwise independent of `--workers`, `--threads`,
//! `--slice` and of any preemption, migration or retry along the way.

use lv_driver::{Scenario, ScenarioKind};
use lv_server::{
    chrome_timeline, ledger, metrics_json_path, query, replay_readonly, socket_path, text_timeline,
    FleetMetrics, JobSpec, Replay, Server, ServerConfig,
};
use lv_trace::json::JsonObject;
use lv_trace::sink::{parse_jsonl, TraceLog};
use std::path::Path;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: serve <submit|run|status|metrics|timeline> --journal <path> [options]\n\
         \n\
         serve submit   --journal J [--ckpt-dir D] <scenario> [n] [steps] [--id NAME] [--inject SPEC]\n\
         serve run      --journal J [--ckpt-dir D] [--workers M] [--threads T] [--slice K]\n\
         \x20                [--watchdog-ms W] [--max-retries R] [--max-slices N] [--ring K]\n\
         \x20                [--endpoint] [--trace-dir DIR]\n\
         serve status   --journal J [--follow]\n\
         serve metrics  --journal J [--format prom|json]\n\
         serve timeline --journal J <job>|--all [--chrome] [--trace-dir DIR]\n\
         \n\
         scenarios: cavity, channel, taylor-green, shear-layer"
    );
    std::process::exit(2);
}

fn bail(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}

struct Common {
    journal: Option<String>,
    ckpt_dir: Option<String>,
}

impl Common {
    fn journal(&self) -> &str {
        match &self.journal {
            Some(path) => path,
            None => bail("--journal <path> is required"),
        }
    }

    fn config(&self) -> ServerConfig {
        ServerConfig {
            checkpoint_dir: self
                .ckpt_dir
                .clone()
                .unwrap_or_else(|| format!("{}.ckpt.d", self.journal()))
                .into(),
            ..ServerConfig::default()
        }
    }
}

fn flag_value<'a>(args: &'a [String], i: usize, flag: &str) -> &'a str {
    match args.get(i + 1) {
        Some(value) => value,
        None => bail(&format!("{flag} needs a value")),
    }
}

fn parse_num<T: std::str::FromStr>(value: &str, flag: &str) -> T {
    value.parse().unwrap_or_else(|_| bail(&format!("{flag}: cannot parse '{value}'")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("help");
    let mut common = Common { journal: None, ckpt_dir: None };
    let mut rest: Vec<String> = Vec::new();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--journal" => {
                common.journal = Some(flag_value(&args, i, "--journal").to_string());
                i += 2;
            }
            "--ckpt-dir" => {
                common.ckpt_dir = Some(flag_value(&args, i, "--ckpt-dir").to_string());
                i += 2;
            }
            _ => {
                rest.push(args[i].clone());
                i += 1;
            }
        }
    }
    match command {
        "submit" => submit(&common, &rest),
        "run" => run(&common, &rest),
        "status" => status(&common, &rest),
        "metrics" => metrics(&common, &rest),
        "timeline" => timeline(&common, &rest),
        _ => usage(),
    }
}

fn open(common: &Common, config: ServerConfig) -> Server {
    Server::open(common.journal(), config).unwrap_or_else(|e| {
        eprintln!("error: cannot open journal {}: {e}", common.journal());
        std::process::exit(1);
    })
}

fn submit(common: &Common, rest: &[String]) {
    let mut scenario_name: Option<String> = None;
    let mut n: usize = 8;
    let mut steps: u64 = 10;
    let mut id: Option<String> = None;
    let mut inject: Option<String> = None;
    let mut positional = 0;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--id" => {
                id = Some(flag_value(rest, i, "--id").to_string());
                i += 2;
            }
            "--inject" => {
                inject = Some(flag_value(rest, i, "--inject").to_string());
                i += 2;
            }
            flag if flag.starts_with("--") => bail(&format!("unknown submit flag {flag}")),
            value => {
                match positional {
                    0 => scenario_name = Some(value.to_string()),
                    1 => n = parse_num(value, "n"),
                    2 => steps = parse_num(value, "steps"),
                    _ => bail("too many positional arguments"),
                }
                positional += 1;
                i += 1;
            }
        }
    }
    let Some(scenario_name) = scenario_name else { bail("submit needs a scenario name") };
    let Some(kind) = ScenarioKind::from_name(&scenario_name) else {
        bail(&format!(
            "unknown scenario '{scenario_name}' (cavity, channel, taylor-green, shear-layer)"
        ))
    };
    if n == 0 {
        bail("submit needs a concrete resolution (n > 0)");
    }
    let mut server = open(common, common.config());
    let id = id.unwrap_or_else(|| format!("job-{}", server.jobs().len() + 1));
    let mut spec = JobSpec::new(id.clone(), Scenario::new(kind, n), steps);
    if let Some(inject) = inject {
        spec = spec.with_inject(inject);
    }
    if let Err(e) = server.submit(spec) {
        if e.kind() == std::io::ErrorKind::InvalidInput {
            bail(&e.to_string());
        }
        eprintln!("error: cannot journal the submission: {e}");
        std::process::exit(1);
    }
    println!("submitted job {id}: {scenario_name} n={n} for {steps} step(s)");
}

fn run(common: &Common, rest: &[String]) {
    let mut config = common.config();
    config.verbose = true;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--workers" => {
                config.workers = parse_num(flag_value(rest, i, "--workers"), "--workers");
                i += 2;
            }
            "--threads" => {
                config.threads_per_worker =
                    parse_num(flag_value(rest, i, "--threads"), "--threads");
                i += 2;
            }
            "--slice" => {
                config.slice_steps = parse_num(flag_value(rest, i, "--slice"), "--slice");
                i += 2;
            }
            "--watchdog-ms" => {
                let ms: u64 = parse_num(flag_value(rest, i, "--watchdog-ms"), "--watchdog-ms");
                config.step_deadline = Duration::from_millis(ms);
                i += 2;
            }
            "--max-retries" => {
                config.max_job_retries =
                    parse_num(flag_value(rest, i, "--max-retries"), "--max-retries");
                i += 2;
            }
            "--max-slices" => {
                config.max_slices =
                    Some(parse_num(flag_value(rest, i, "--max-slices"), "--max-slices"));
                i += 2;
            }
            "--ring" => {
                config.ring_depth = parse_num(flag_value(rest, i, "--ring"), "--ring");
                i += 2;
            }
            "--endpoint" => {
                config.endpoint = true;
                i += 1;
            }
            "--trace-dir" => {
                config.trace_dir = Some(flag_value(rest, i, "--trace-dir").into());
                i += 2;
            }
            flag => bail(&format!("unknown run flag {flag}")),
        }
    }
    if config.workers == 0 || config.threads_per_worker == 0 || config.slice_steps == 0 {
        bail("--workers, --threads and --slice must be positive");
    }
    let mut server = open(common, config);
    println!("{}", server.replay());
    // Worker panics are contained by the supervisor and journaled as retry
    // records; keep the default hook's multi-line backtrace out of the
    // service log.  The hook must not panic itself (stderr may be a broken
    // pipe), so write errors are ignored rather than unwound.
    std::panic::set_hook(Box::new(|info| {
        use std::io::Write;
        let _ = writeln!(std::io::stderr(), "[contained] {info}");
    }));
    let report = server.run();
    let _ = std::panic::take_hook();
    println!(
        "fleet: {} done, {} failed, {} pending in {} slice(s)",
        report.done, report.failed, report.pending, report.slices
    );
    for job in server.jobs() {
        println!("  {} {}", job.id, job.status);
    }
    std::process::exit(if report.failed > 0 { 1 } else { 0 });
}

/// Read-only journal replay for the inspection subcommands.  `None` means
/// the journal does not exist — the caller reports that and exits 0, since
/// "no fleet" is a valid answer for a read-only query.  Corruption exits 1.
fn inspect_replay(journal: &str) -> Option<Replay> {
    match replay_readonly(Path::new(journal)) {
        Ok(replay) => Some(replay),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => {
            eprintln!("error: cannot replay journal {journal}: {e}");
            std::process::exit(1);
        }
    }
}

fn status(common: &Common, rest: &[String]) {
    let mut follow = false;
    for flag in rest {
        match flag.as_str() {
            "--follow" => follow = true,
            other => bail(&format!("unknown status flag {other}")),
        }
    }
    let journal = common.journal();
    let socket = socket_path(Path::new(journal));
    if follow {
        // Stream live status lines until the supervisor goes away, then
        // fall through to the final offline snapshot below.
        while let Ok(reply) = query(&socket, "status") {
            print!("{reply}");
            std::thread::sleep(Duration::from_millis(500));
        }
    } else if let Ok(reply) = query(&socket, "status") {
        print!("{reply}");
        return;
    }

    // No live supervisor: the journal *is* the fleet state.  Report the
    // replayed ledger and exit 0 — a dead supervisor is an observation.
    let Some(replay) = inspect_replay(journal) else {
        println!("no journal at {journal} (nothing to report)");
        return;
    };
    let entries = ledger(&replay.records).unwrap_or_else(|e| {
        eprintln!("error: journal {journal} is not a valid ledger: {e}");
        std::process::exit(1);
    });
    let (done, failed, pending) =
        entries.iter().fold((0usize, 0usize, 0usize), |acc, entry| match entry.status {
            lv_server::JobStatus::Done { .. } => (acc.0 + 1, acc.1, acc.2),
            lv_server::JobStatus::Failed { .. } => (acc.0, acc.1 + 1, acc.2),
            _ => (acc.0, acc.1, acc.2 + 1),
        });
    println!(
        "{}",
        JsonObject::new()
            .u64("format", 1)
            .bool("live", false)
            .usize("jobs", entries.len())
            .usize("done", done)
            .usize("failed", failed)
            .usize("pending", pending)
            .bool("torn_tail", replay.torn_tail)
            .finish()
    );
    for entry in &entries {
        println!("  {} {} (attempts {})", entry.spec.id, entry.status, entry.attempts);
    }
}

fn metrics(common: &Common, rest: &[String]) {
    let mut prom = false;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--format" => {
                match flag_value(rest, i, "--format") {
                    "prom" => prom = true,
                    "json" => prom = false,
                    other => bail(&format!("--format must be prom or json, not '{other}'")),
                }
                i += 2;
            }
            other => bail(&format!("unknown metrics flag {other}")),
        }
    }
    let journal = common.journal();
    let socket = socket_path(Path::new(journal));
    let request = if prom { "metrics prom" } else { "metrics json" };
    if let Ok(reply) = query(&socket, request) {
        print!("{reply}");
        return;
    }
    // Dead supervisor.  For JSON, prefer the document it flushed at its
    // last checkpoint (it carries the host-dependent histograms and the
    // progress board); otherwise fold the journal read-only, which
    // reconstructs exactly the deterministic counter subset.
    if !prom {
        if let Ok(doc) = std::fs::read_to_string(metrics_json_path(Path::new(journal))) {
            println!("{}", doc.trim_end());
            return;
        }
    }
    let Some(replay) = inspect_replay(journal) else {
        println!("no journal at {journal} (nothing to report)");
        return;
    };
    let fleet = FleetMetrics::new();
    fleet.replay(&replay.records);
    if prom {
        print!("{}", fleet.snapshot().to_prometheus());
    } else {
        println!("{}", fleet.document());
    }
}

fn timeline(common: &Common, rest: &[String]) {
    let mut job: Option<String> = None;
    let mut all = false;
    let mut chrome = false;
    let mut trace_dir: Option<String> = None;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--all" => {
                all = true;
                i += 1;
            }
            "--chrome" => {
                chrome = true;
                i += 1;
            }
            "--trace-dir" => {
                trace_dir = Some(flag_value(rest, i, "--trace-dir").to_string());
                i += 2;
            }
            flag if flag.starts_with("--") => bail(&format!("unknown timeline flag {flag}")),
            value => {
                if job.is_some() {
                    bail("timeline takes at most one job id");
                }
                job = Some(value.to_string());
                i += 1;
            }
        }
    }
    if all == job.is_some() {
        bail("timeline needs exactly one of a job id or --all");
    }
    let journal = common.journal();
    let Some(replay) = inspect_replay(journal) else {
        println!("no journal at {journal} (nothing to report)");
        return;
    };
    if chrome {
        // The Chrome document is always the merged fleet view (one pid per
        // worker); a job filter would leave dangling flow between workers.
        let logs = load_trace_logs(trace_dir.as_deref());
        print!("{}", chrome_timeline(&replay.records, &logs));
    } else {
        print!("{}", text_timeline(&replay.records, job.as_deref()));
    }
}

/// Loads every `worker-<k>.trace.jsonl` span log in `dir` (the files
/// `serve run --trace-dir` writes), keyed by worker id for the Chrome
/// export's pid axis.  Unreadable or unparseable logs are skipped with a
/// note on stderr — a timeline with fewer lanes beats no timeline.
fn load_trace_logs(dir: Option<&str>) -> Vec<(u64, TraceLog)> {
    let Some(dir) = dir else { return Vec::new() };
    let mut logs = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("note: cannot read trace dir {dir}: {e}");
            return Vec::new();
        }
    };
    for entry in entries.filter_map(Result::ok) {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(worker) = name
            .strip_prefix("worker-")
            .and_then(|rest| rest.strip_suffix(".trace.jsonl"))
            .and_then(|id| id.parse::<u64>().ok())
        else {
            continue;
        };
        match std::fs::read_to_string(entry.path())
            .map_err(|e| e.to_string())
            .and_then(|text| parse_jsonl(&text))
        {
            Ok(log) => logs.push((worker, log)),
            Err(e) => eprintln!("note: skipping {name}: {e}"),
        }
    }
    logs.sort_by_key(|(worker, _)| *worker);
    logs
}
