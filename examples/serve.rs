//! The supervised simulation service CLI: submit jobs into a journaled
//! queue, drain them over a pool of worker teams, and inspect the fleet.
//!
//! ```text
//! cargo run --release --example serve -- submit --journal jobs.jsonl cavity 8 20
//! cargo run --release --example serve -- run    --journal jobs.jsonl --workers 2
//! cargo run --release --example serve -- status --journal jobs.jsonl
//! ```
//!
//! Subcommands:
//!
//! * `submit --journal <path> <scenario> [n] [steps]` — append one job to
//!   the journal.  Flags: `--id <name>` (default `job-<k>`), `--inject
//!   <spec>` (the `simulate` fault grammar, e.g. `panic@5,seed=7`),
//!   `--ckpt-dir <dir>` (default `<journal>.ckpt.d`);
//! * `run` — replay the journal, then drain every pending job to
//!   completion.  Flags: `--workers <M>` (default 2), `--threads <T>` per
//!   worker (default 1), `--slice <K>` steps per slice (default 4),
//!   `--watchdog-ms <W>` per-step deadline (default 30000),
//!   `--max-retries <R>` (default 3), `--max-slices <N>` (graceful drain
//!   for tests), `--ring <K>` checkpoint depth (default 3), `--ckpt-dir`;
//! * `status` — replay the journal and print every job's state, running
//!   nothing.
//!
//! `run` always prints the replay line (`journal replay: N job(s): ...`) —
//! after a crashed supervisor it reports how many jobs were recovered —
//! and exits `0` when no job failed, `1` when any did.  CLI errors exit
//! `2`.  Trajectories are bitwise independent of `--workers`, `--threads`,
//! `--slice` and of any preemption, migration or retry along the way.

use lv_driver::{Scenario, ScenarioKind};
use lv_server::{JobSpec, Server, ServerConfig};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: serve <submit|run|status> --journal <path> [options]\n\
         \n\
         serve submit --journal J [--ckpt-dir D] <scenario> [n] [steps] [--id NAME] [--inject SPEC]\n\
         serve run    --journal J [--ckpt-dir D] [--workers M] [--threads T] [--slice K]\n\
         \x20              [--watchdog-ms W] [--max-retries R] [--max-slices N] [--ring K]\n\
         serve status --journal J\n\
         \n\
         scenarios: cavity, channel, taylor-green, shear-layer"
    );
    std::process::exit(2);
}

fn bail(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}

struct Common {
    journal: Option<String>,
    ckpt_dir: Option<String>,
}

impl Common {
    fn journal(&self) -> &str {
        match &self.journal {
            Some(path) => path,
            None => bail("--journal <path> is required"),
        }
    }

    fn config(&self) -> ServerConfig {
        ServerConfig {
            checkpoint_dir: self
                .ckpt_dir
                .clone()
                .unwrap_or_else(|| format!("{}.ckpt.d", self.journal()))
                .into(),
            ..ServerConfig::default()
        }
    }
}

fn flag_value<'a>(args: &'a [String], i: usize, flag: &str) -> &'a str {
    match args.get(i + 1) {
        Some(value) => value,
        None => bail(&format!("{flag} needs a value")),
    }
}

fn parse_num<T: std::str::FromStr>(value: &str, flag: &str) -> T {
    value.parse().unwrap_or_else(|_| bail(&format!("{flag}: cannot parse '{value}'")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("help");
    let mut common = Common { journal: None, ckpt_dir: None };
    let mut rest: Vec<String> = Vec::new();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--journal" => {
                common.journal = Some(flag_value(&args, i, "--journal").to_string());
                i += 2;
            }
            "--ckpt-dir" => {
                common.ckpt_dir = Some(flag_value(&args, i, "--ckpt-dir").to_string());
                i += 2;
            }
            _ => {
                rest.push(args[i].clone());
                i += 1;
            }
        }
    }
    match command {
        "submit" => submit(&common, &rest),
        "run" => run(&common, &rest),
        "status" => status(&common),
        _ => usage(),
    }
}

fn open(common: &Common, config: ServerConfig) -> Server {
    Server::open(common.journal(), config).unwrap_or_else(|e| {
        eprintln!("error: cannot open journal {}: {e}", common.journal());
        std::process::exit(1);
    })
}

fn submit(common: &Common, rest: &[String]) {
    let mut scenario_name: Option<String> = None;
    let mut n: usize = 8;
    let mut steps: u64 = 10;
    let mut id: Option<String> = None;
    let mut inject: Option<String> = None;
    let mut positional = 0;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--id" => {
                id = Some(flag_value(rest, i, "--id").to_string());
                i += 2;
            }
            "--inject" => {
                inject = Some(flag_value(rest, i, "--inject").to_string());
                i += 2;
            }
            flag if flag.starts_with("--") => bail(&format!("unknown submit flag {flag}")),
            value => {
                match positional {
                    0 => scenario_name = Some(value.to_string()),
                    1 => n = parse_num(value, "n"),
                    2 => steps = parse_num(value, "steps"),
                    _ => bail("too many positional arguments"),
                }
                positional += 1;
                i += 1;
            }
        }
    }
    let Some(scenario_name) = scenario_name else { bail("submit needs a scenario name") };
    let Some(kind) = ScenarioKind::from_name(&scenario_name) else {
        bail(&format!(
            "unknown scenario '{scenario_name}' (cavity, channel, taylor-green, shear-layer)"
        ))
    };
    if n == 0 {
        bail("submit needs a concrete resolution (n > 0)");
    }
    let mut server = open(common, common.config());
    let id = id.unwrap_or_else(|| format!("job-{}", server.jobs().len() + 1));
    let mut spec = JobSpec::new(id.clone(), Scenario::new(kind, n), steps);
    if let Some(inject) = inject {
        spec = spec.with_inject(inject);
    }
    if let Err(e) = server.submit(spec) {
        if e.kind() == std::io::ErrorKind::InvalidInput {
            bail(&e.to_string());
        }
        eprintln!("error: cannot journal the submission: {e}");
        std::process::exit(1);
    }
    println!("submitted job {id}: {scenario_name} n={n} for {steps} step(s)");
}

fn run(common: &Common, rest: &[String]) {
    let mut config = common.config();
    config.verbose = true;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--workers" => {
                config.workers = parse_num(flag_value(rest, i, "--workers"), "--workers");
                i += 2;
            }
            "--threads" => {
                config.threads_per_worker =
                    parse_num(flag_value(rest, i, "--threads"), "--threads");
                i += 2;
            }
            "--slice" => {
                config.slice_steps = parse_num(flag_value(rest, i, "--slice"), "--slice");
                i += 2;
            }
            "--watchdog-ms" => {
                let ms: u64 = parse_num(flag_value(rest, i, "--watchdog-ms"), "--watchdog-ms");
                config.step_deadline = Duration::from_millis(ms);
                i += 2;
            }
            "--max-retries" => {
                config.max_job_retries =
                    parse_num(flag_value(rest, i, "--max-retries"), "--max-retries");
                i += 2;
            }
            "--max-slices" => {
                config.max_slices =
                    Some(parse_num(flag_value(rest, i, "--max-slices"), "--max-slices"));
                i += 2;
            }
            "--ring" => {
                config.ring_depth = parse_num(flag_value(rest, i, "--ring"), "--ring");
                i += 2;
            }
            flag => bail(&format!("unknown run flag {flag}")),
        }
    }
    if config.workers == 0 || config.threads_per_worker == 0 || config.slice_steps == 0 {
        bail("--workers, --threads and --slice must be positive");
    }
    let mut server = open(common, config);
    println!("{}", server.replay());
    // Worker panics are contained by the supervisor and journaled as retry
    // records; keep the default hook's multi-line backtrace out of the
    // service log.  The hook must not panic itself (stderr may be a broken
    // pipe), so write errors are ignored rather than unwound.
    std::panic::set_hook(Box::new(|info| {
        use std::io::Write;
        let _ = writeln!(std::io::stderr(), "[contained] {info}");
    }));
    let report = server.run();
    let _ = std::panic::take_hook();
    println!(
        "fleet: {} done, {} failed, {} pending in {} slice(s)",
        report.done, report.failed, report.pending, report.slices
    );
    for job in server.jobs() {
        println!("  {} {}", job.id, job.status);
    }
    std::process::exit(if report.failed > 0 { 1 } else { 0 });
}

fn status(common: &Common) {
    if !std::path::Path::new(common.journal()).exists() {
        bail(&format!("no journal at {}", common.journal()));
    }
    let server = open(common, common.config());
    println!("{}", server.replay());
    for job in server.jobs() {
        println!("  {} {} (attempts {})", job.id, job.status, job.attempts);
    }
}
