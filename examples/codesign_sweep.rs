//! The co-design campaign of the paper, end to end: run the iterative
//! methodology of Section 3 on the simulated RISC-V VEC prototype, then print
//! the headline results (Figure 11 and Figure 12) for a full
//! `VECTOR_SIZE` sweep on the three platforms.
//!
//! ```text
//! cargo run --release --example codesign_sweep -- [elements]
//! ```

use alya_longvec::prelude::*;
use lv_core::experiment::SweepConfig;
use lv_core::reproduce;

fn main() {
    let min_elements: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1000);

    let mut runner = Runner::new(SweepConfig { min_elements, ..SweepConfig::default() });
    println!("workload: lid-driven-cavity mesh with {} elements\n", runner.mesh().num_elements());

    // ---------------------------------------------------- the co-design loop
    let report = run_codesign_loop(&mut runner, PlatformKind::RiscvVec, 240);
    println!("{}", report.to_text());
    for step in &report.steps {
        for remark in &step.motivating_remarks {
            println!("    {remark}");
        }
    }

    // -------------------------------------------------------- headline plots
    println!();
    println!("{}", reproduce::fig11_speedup(&mut runner).to_aligned_text());
    println!("{}", reproduce::fig12_portability(&mut runner).to_aligned_text());
    println!("{}", reproduce::fig13_mn4_phase2(&mut runner).to_aligned_text());

    // ------------------------------------------------------------- takeaways
    let scalar = RunKey::scalar_baseline(PlatformKind::RiscvVec);
    let best = RunKey::optimized(PlatformKind::RiscvVec, 240, OptLevel::Vec1);
    let best256 = RunKey::optimized(PlatformKind::RiscvVec, 256, OptLevel::Vec1);
    println!("headline numbers:");
    println!(
        "  final speed-up vs scalar at VECTOR_SIZE=240: {:.2}x (paper: 7.6x)",
        runner.speedup(best, scalar)
    );
    println!(
        "  VECTOR_SIZE=240 vs 256 (the FSM sweet spot): {:.3}x (paper: 240 is fastest)",
        runner.speedup(best, best256)
    );
}
