//! The perf-regression gate: reads the wall-clock bench artifacts
//! (`BENCH_assembly.json`, `BENCH_solver.json`, `BENCH_driver.json`,
//! `BENCH_server.json`) and exits non-zero when a fast path regressed past
//! its floor.  CI runs it right after the quick benches regenerate the
//! artifacts.
//!
//! ```text
//! cargo run --release --example bench_gate
//! ```
//!
//! Environment knobs:
//!
//! * `LV_GATE_MIN_SLICE_SPEEDUP` — floor for the slice-over-accessor
//!   assembly speedup (default 1.8, the ROADMAP target for the CI host);
//! * `LV_GATE_MIN_SOLVER_SPEEDUP` — floor for the best pooled CG/BiCGSTAB
//!   speedup over serial on multi-core hosts (default 1.0: parallel must
//!   not lose; single-core hosts skip this check);
//! * `LV_GATE_MIN_SPMM_SPEEDUP` — floor for the fused `spmm3` over three
//!   sequential SpMV streams (default 1.2; a memory-traffic win, so it is
//!   enforced on single-core hosts too);
//! * `LV_GATE_MIN_BANDWIDTH_RATIO` — floor for the RCM bandwidth reduction
//!   recorded in the artifact's renumbering section (default 2.0);
//! * `LV_GATE_MAX_MGCG_ITERATIONS` — ceiling for the MG-CG iteration count
//!   at the largest measured resolution (default 15, the ISSUE ceiling at
//!   16³); the same gate also enforces non-increasing iterations with
//!   resolution and, on multi-core hosts, MG-CG beating plain CG by
//!   `LV_GATE_MIN_MGCG_SPEEDUP` (default 1.0);
//! * `LV_GATE_MIN_SERVER_SCALING` — floor for each jobs/sec step of the
//!   supervised-service worker sweep on multi-core hosts (default 0.9:
//!   adding workers may cost at most 10%; single-core hosts skip the
//!   scaling check and only validate the artifact);
//! * `LV_GATE_MAX_METRICS_OVERHEAD` — ceiling for the fleet-metrics
//!   registry's wall-clock overhead on the saturation fleet, read from the
//!   server artifact's `metrics` block (default 0.05, the ISSUE ceiling;
//!   artifacts without the block skip the check);
//! * `LV_BENCH_HISTORY_DIR` — optional directory of prior bench artifacts
//!   (consumed in sorted file order, oldest first; files ending in
//!   `-assembly.json` / `-driver.json` / `-server.json` belong to those
//!   artifacts, anything else is treated as a solver artifact — the
//!   pre-suffix history CI accumulated).  When at least
//!   `LV_GATE_TREND_WINDOW` (default 3) artifacts of a kind exist, the
//!   gate also fails on a *sustained* trend across the last window —
//!   monotone decline of the spmm3 ratio, the worst assembly slice
//!   speedup, the best pooled solver speedup or (multi-core only) the
//!   peak service jobs/sec beyond `LV_GATE_TREND_TOLERANCE` (default
//!   0.05), or monotone growth of a driver phase's 1-thread wall-clock
//!   beyond `LV_GATE_TREND_TOLERANCE_WALLCLOCK` (default 0.25; wall-clock
//!   is far noisier than a ratio) — while tolerating single-run noise;
//! * `LV_BENCH_JSON` / `LV_BENCH_SOLVER_JSON` / `LV_BENCH_DRIVER_JSON` /
//!   `LV_BENCH_SERVER_JSON` — artifact paths (default: the workspace root
//!   copies the benches write).

use lv_metrics::regression::parse_named_numbers;
use lv_metrics::{
    best_parallel_solver_speedup, driver_phase_seconds, gate_assembly_bench, gate_metrics_overhead,
    gate_multigrid_bench, gate_renumbering_bench, gate_rolling_window, gate_rolling_window_low,
    gate_server_bench, gate_solver_bench, gate_spmm_bench, parse_host_threads,
    server_peak_throughput, worst_slice_speedup, GateReport,
};

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn run_gate(label: &str, path: &str, gate: impl Fn(&str) -> GateReport) -> bool {
    match std::fs::read_to_string(path) {
        Ok(json) => {
            let report = gate(&json);
            println!("{label} ({path}):");
            print!("{}", report.to_text());
            report.passed()
        }
        Err(err) => {
            println!("{label} ({path}): cannot read artifact: {err}");
            false
        }
    }
}

/// Which history files belong to which artifact: CI persists rolling copies
/// as `<stamp>-<kind>.json`.  Unsuffixed files are the solver history from
/// before the assembly/driver artifacts joined the cache.
fn history_kind(name: &str) -> &'static str {
    if name.ends_with("-assembly.json") {
        "assembly"
    } else if name.ends_with("-driver.json") {
        "driver"
    } else if name.ends_with("-server.json") {
        "server"
    } else {
        "solver"
    }
}

/// Extracts one scalar per artifact of `kind` in `dir` (sorted file order,
/// oldest first), appending the current artifact's value last.  A history
/// entry that *is* the current artifact — the same file, or a
/// byte-identical copy CI persisted into the dir before gating — is
/// skipped, so the trailing value is never double-counted.  Artifacts the
/// extractor cannot read (older formats) are skipped silently.
fn history_series(
    dir: &str,
    kind: &str,
    current_json: &str,
    extract: impl Fn(&str) -> Option<f64>,
) -> Vec<f64> {
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
                .filter(|p| {
                    p.file_name().and_then(|n| n.to_str()).is_some_and(|n| history_kind(n) == kind)
                })
                .collect()
        })
        .unwrap_or_default();
    paths.sort();
    let mut series = Vec::new();
    for path in paths {
        if let Ok(json) = std::fs::read_to_string(&path) {
            if json == current_json {
                continue;
            }
            if let Some(value) = extract(&json) {
                series.push(value);
            }
        }
    }
    if let Some(value) = extract(current_json) {
        series.push(value);
    }
    series
}

/// Runs one rolling-window trend check and prints its report.
fn run_trend(report: GateReport, dir: &str, points: usize) -> bool {
    println!("artifact trend ({dir}, {points} artifact(s) incl. current):");
    print!("{}", report.to_text());
    report.passed()
}

fn main() {
    let min_slice = env_f64("LV_GATE_MIN_SLICE_SPEEDUP", 1.8);
    let min_solver = env_f64("LV_GATE_MIN_SOLVER_SPEEDUP", 1.0);
    let min_spmm = env_f64("LV_GATE_MIN_SPMM_SPEEDUP", 1.2);
    let min_bandwidth = env_f64("LV_GATE_MIN_BANDWIDTH_RATIO", 2.0);
    // Clamped to 2: a trend needs at least two points, and a misconfigured
    // knob must degrade to a gate decision, not a panic.
    let trend_window = (env_f64("LV_GATE_TREND_WINDOW", 3.0) as usize).max(2);
    let trend_tolerance = env_f64("LV_GATE_TREND_TOLERANCE", 0.05);
    let wallclock_tolerance = env_f64("LV_GATE_TREND_TOLERANCE_WALLCLOCK", 0.25);
    let max_mgcg_iterations = env_f64("LV_GATE_MAX_MGCG_ITERATIONS", 15.0) as usize;
    let min_mgcg_speedup = env_f64("LV_GATE_MIN_MGCG_SPEEDUP", 1.0);
    let min_server_scaling = env_f64("LV_GATE_MIN_SERVER_SCALING", 0.9);
    let max_metrics_overhead = env_f64("LV_GATE_MAX_METRICS_OVERHEAD", 0.05);
    let assembly_path = std::env::var("LV_BENCH_JSON")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_assembly.json").into());
    let solver_path = std::env::var("LV_BENCH_SOLVER_JSON")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_solver.json").into());
    let driver_path = std::env::var("LV_BENCH_DRIVER_JSON")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_driver.json").into());
    let server_path = std::env::var("LV_BENCH_SERVER_JSON")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_server.json").into());

    println!(
        "perf-regression gate (slice floor {min_slice:.2}x, solver floor {min_solver:.2}x, \
         spmm floor {min_spmm:.2}x, bandwidth floor {min_bandwidth:.2}x, \
         mgcg ceiling {max_mgcg_iterations} it / floor {min_mgcg_speedup:.2}x, \
         server scaling floor {min_server_scaling:.2}x, \
         metrics overhead ceiling {:.1}%)\n",
        max_metrics_overhead * 100.0
    );
    let assembly_ok =
        run_gate("assembly bench", &assembly_path, |json| gate_assembly_bench(json, min_slice));
    let solver_ok =
        run_gate("solver bench", &solver_path, |json| gate_solver_bench(json, min_solver));
    let spmm_ok = run_gate("multi-RHS bench", &solver_path, |json| gate_spmm_bench(json, min_spmm));
    let renumber_ok =
        run_gate("renumbering", &solver_path, |json| gate_renumbering_bench(json, min_bandwidth));
    let multigrid_ok = run_gate("multigrid pressure solve", &driver_path, |json| {
        gate_multigrid_bench(json, max_mgcg_iterations, min_mgcg_speedup)
    });
    let server_ok =
        run_gate("server bench", &server_path, |json| gate_server_bench(json, min_server_scaling));
    let metrics_ok = run_gate("metrics overhead", &server_path, |json| {
        let off = parse_named_numbers(json, "\"metrics\":", "off_seconds").first().copied();
        let on = parse_named_numbers(json, "\"metrics\":", "on_seconds").first().copied();
        match (off, on) {
            (Some(off), Some(on)) => gate_metrics_overhead(off, on, max_metrics_overhead),
            _ => {
                let mut report = GateReport::default();
                report.push(
                    "fleet metrics overhead",
                    true,
                    "skipped: artifact has no metrics block (older format)",
                );
                report
            }
        }
    });

    // Rolling-window trends over the artifact history, when CI provides one.
    // Each trend label names the artifact it reads, so every PASS/FAIL/skip
    // line in the CI log says which file and metric it judged.
    let artifact = |path: &str| {
        std::path::Path::new(path).file_name().and_then(|n| n.to_str()).unwrap_or(path).to_string()
    };
    let trend_ok = match std::env::var("LV_BENCH_HISTORY_DIR") {
        Ok(dir) => {
            let mut ok = true;

            let solver_json = std::fs::read_to_string(&solver_path).unwrap_or_default();
            let spmm = history_series(&dir, "solver", &solver_json, |json| {
                parse_named_numbers(json, "\"method\": \"spmm3\"", "speedup").first().copied()
            });
            ok &= run_trend(
                gate_rolling_window(
                    &format!("spmm3 ratio trend ({})", artifact(&solver_path)),
                    &spmm,
                    trend_window,
                    trend_tolerance,
                ),
                &dir,
                spmm.len(),
            );
            // The pooled speedup only means something with real cores; on a
            // single-core host the series would trend with scheduler noise.
            if parse_host_threads(&solver_json).unwrap_or(1) >= 2 {
                let pooled =
                    history_series(&dir, "solver", &solver_json, best_parallel_solver_speedup);
                ok &= run_trend(
                    gate_rolling_window(
                        &format!("pooled solver speedup trend ({})", artifact(&solver_path)),
                        &pooled,
                        trend_window,
                        trend_tolerance,
                    ),
                    &dir,
                    pooled.len(),
                );
            } else {
                println!("artifact trend: pooled solver speedup skipped (single-core host)");
            }

            let assembly_json = std::fs::read_to_string(&assembly_path).unwrap_or_default();
            let slices = history_series(&dir, "assembly", &assembly_json, worst_slice_speedup);
            ok &= run_trend(
                gate_rolling_window(
                    &format!("assembly slice speedup trend ({})", artifact(&assembly_path)),
                    &slices,
                    trend_window,
                    trend_tolerance,
                ),
                &dir,
                slices.len(),
            );

            // Jobs/sec on a single-core host is pure oversubscription noise;
            // only trend it where the sweep measures real parallelism.
            let server_json = std::fs::read_to_string(&server_path).unwrap_or_default();
            if parse_host_threads(&server_json).unwrap_or(1) >= 2 {
                let throughput =
                    history_series(&dir, "server", &server_json, server_peak_throughput);
                ok &= run_trend(
                    gate_rolling_window(
                        &format!("server peak jobs/sec trend ({})", artifact(&server_path)),
                        &throughput,
                        trend_window,
                        trend_tolerance,
                    ),
                    &dir,
                    throughput.len(),
                );
            } else {
                println!("artifact trend: server peak jobs/sec skipped (single-core host)");
            }

            let driver_json = std::fs::read_to_string(&driver_path).unwrap_or_default();
            for phase in ["assembly", "momentum", "poisson", "correction"] {
                let seconds = history_series(&dir, "driver", &driver_json, |json| {
                    driver_phase_seconds(json, phase)
                });
                ok &= run_trend(
                    gate_rolling_window_low(
                        &format!("driver {phase} 1t seconds trend ({})", artifact(&driver_path)),
                        &seconds,
                        trend_window,
                        wallclock_tolerance,
                    ),
                    &dir,
                    seconds.len(),
                );
            }
            ok
        }
        Err(_) => {
            println!("artifact trend: skipped (LV_BENCH_HISTORY_DIR not set)");
            true
        }
    };

    if assembly_ok
        && solver_ok
        && spmm_ok
        && renumber_ok
        && multigrid_ok
        && server_ok
        && metrics_ok
        && trend_ok
    {
        println!("\ngate passed");
    } else {
        println!("\ngate FAILED");
        std::process::exit(1);
    }
}
