//! The perf-regression gate: reads the wall-clock bench artifacts
//! (`BENCH_assembly.json`, `BENCH_solver.json`) and exits non-zero when a
//! fast path regressed past its floor.  CI runs it right after the quick
//! benches regenerate the artifacts.
//!
//! ```text
//! cargo run --release --example bench_gate
//! ```
//!
//! Environment knobs:
//!
//! * `LV_GATE_MIN_SLICE_SPEEDUP` — floor for the slice-over-accessor
//!   assembly speedup (default 1.8, the ROADMAP target for the CI host);
//! * `LV_GATE_MIN_SOLVER_SPEEDUP` — floor for the best pooled CG/BiCGSTAB
//!   speedup over serial on multi-core hosts (default 1.0: parallel must
//!   not lose; single-core hosts skip this check);
//! * `LV_GATE_MIN_SPMM_SPEEDUP` — floor for the fused `spmm3` over three
//!   sequential SpMV streams (default 1.2; a memory-traffic win, so it is
//!   enforced on single-core hosts too);
//! * `LV_GATE_MIN_BANDWIDTH_RATIO` — floor for the RCM bandwidth reduction
//!   recorded in the artifact's renumbering section (default 2.0);
//! * `LV_BENCH_HISTORY_DIR` — optional directory of prior
//!   `BENCH_solver.json` artifacts (any `*.json`, consumed in sorted file
//!   order, oldest first).  When at least `LV_GATE_TREND_WINDOW` (default
//!   3) artifacts exist, the gate also fails on a *sustained* downward
//!   trend of the spmm3 ratio across the last window — monotone decline
//!   beyond `LV_GATE_TREND_TOLERANCE` (default 0.05, i.e. 5%) — while
//!   tolerating single-run noise;
//! * `LV_BENCH_JSON` / `LV_BENCH_SOLVER_JSON` — artifact paths (default:
//!   the workspace root copies the benches write).

use lv_metrics::regression::parse_named_numbers;
use lv_metrics::{
    gate_assembly_bench, gate_renumbering_bench, gate_rolling_window, gate_solver_bench,
    gate_spmm_bench, GateReport,
};

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn run_gate(label: &str, path: &str, gate: impl Fn(&str) -> GateReport) -> bool {
    match std::fs::read_to_string(path) {
        Ok(json) => {
            let report = gate(&json);
            println!("{label} ({path}):");
            print!("{}", report.to_text());
            report.passed()
        }
        Err(err) => {
            println!("{label} ({path}): cannot read artifact: {err}");
            false
        }
    }
}

/// Extracts the spmm3 fused-stream ratio of every artifact in `dir` (sorted
/// file order, oldest first), appending the current artifact's ratio last.
/// A history entry that *is* the current artifact — the same file, or a
/// byte-identical copy CI persisted into the dir before gating — is
/// skipped, so the trailing value is never double-counted.
fn spmm_history(dir: &str, current_json: &str) -> Vec<f64> {
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
                .collect()
        })
        .unwrap_or_default();
    paths.sort();
    let mut series = Vec::new();
    for path in paths {
        if let Ok(json) = std::fs::read_to_string(&path) {
            if json == current_json {
                continue;
            }
            if let Some(&ratio) =
                parse_named_numbers(&json, "\"method\": \"spmm3\"", "speedup").first()
            {
                series.push(ratio);
            }
        }
    }
    if let Some(&ratio) =
        parse_named_numbers(current_json, "\"method\": \"spmm3\"", "speedup").first()
    {
        series.push(ratio);
    }
    series
}

fn main() {
    let min_slice = env_f64("LV_GATE_MIN_SLICE_SPEEDUP", 1.8);
    let min_solver = env_f64("LV_GATE_MIN_SOLVER_SPEEDUP", 1.0);
    let min_spmm = env_f64("LV_GATE_MIN_SPMM_SPEEDUP", 1.2);
    let min_bandwidth = env_f64("LV_GATE_MIN_BANDWIDTH_RATIO", 2.0);
    // Clamped to 2: a trend needs at least two points, and a misconfigured
    // knob must degrade to a gate decision, not a panic.
    let trend_window = (env_f64("LV_GATE_TREND_WINDOW", 3.0) as usize).max(2);
    let trend_tolerance = env_f64("LV_GATE_TREND_TOLERANCE", 0.05);
    let assembly_path = std::env::var("LV_BENCH_JSON")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_assembly.json").into());
    let solver_path = std::env::var("LV_BENCH_SOLVER_JSON")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_solver.json").into());

    println!(
        "perf-regression gate (slice floor {min_slice:.2}x, solver floor {min_solver:.2}x, \
         spmm floor {min_spmm:.2}x, bandwidth floor {min_bandwidth:.2}x)\n"
    );
    let assembly_ok =
        run_gate("assembly bench", &assembly_path, |json| gate_assembly_bench(json, min_slice));
    let solver_ok =
        run_gate("solver bench", &solver_path, |json| gate_solver_bench(json, min_solver));
    let spmm_ok = run_gate("multi-RHS bench", &solver_path, |json| gate_spmm_bench(json, min_spmm));
    let renumber_ok =
        run_gate("renumbering", &solver_path, |json| gate_renumbering_bench(json, min_bandwidth));

    // Rolling-window trend over the artifact history, when CI provides one.
    let trend_ok = match std::env::var("LV_BENCH_HISTORY_DIR") {
        Ok(dir) => {
            let current = std::fs::read_to_string(&solver_path).unwrap_or_default();
            let series = spmm_history(&dir, &current);
            let report =
                gate_rolling_window("spmm3 ratio trend", &series, trend_window, trend_tolerance);
            println!("artifact trend ({dir}, {} artifact(s) incl. current):", series.len());
            print!("{}", report.to_text());
            report.passed()
        }
        Err(_) => {
            println!("artifact trend: skipped (LV_BENCH_HISTORY_DIR not set)");
            true
        }
    };

    if assembly_ok && solver_ok && spmm_ok && renumber_ok && trend_ok {
        println!("\ngate passed");
    } else {
        println!("\ngate FAILED");
        std::process::exit(1);
    }
}
