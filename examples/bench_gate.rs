//! The perf-regression gate: reads the wall-clock bench artifacts
//! (`BENCH_assembly.json`, `BENCH_solver.json`) and exits non-zero when a
//! fast path regressed past its floor.  CI runs it right after the quick
//! benches regenerate the artifacts.
//!
//! ```text
//! cargo run --release --example bench_gate
//! ```
//!
//! Environment knobs:
//!
//! * `LV_GATE_MIN_SLICE_SPEEDUP` — floor for the slice-over-accessor
//!   assembly speedup (default 1.8, the ROADMAP target for the CI host);
//! * `LV_GATE_MIN_SOLVER_SPEEDUP` — floor for the best pooled CG/BiCGSTAB
//!   speedup over serial on multi-core hosts (default 1.0: parallel must
//!   not lose; single-core hosts skip this check);
//! * `LV_BENCH_JSON` / `LV_BENCH_SOLVER_JSON` — artifact paths (default:
//!   the workspace root copies the benches write).

use lv_metrics::{gate_assembly_bench, gate_solver_bench, GateReport};

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn run_gate(label: &str, path: &str, gate: impl Fn(&str) -> GateReport) -> bool {
    match std::fs::read_to_string(path) {
        Ok(json) => {
            let report = gate(&json);
            println!("{label} ({path}):");
            print!("{}", report.to_text());
            report.passed()
        }
        Err(err) => {
            println!("{label} ({path}): cannot read artifact: {err}");
            false
        }
    }
}

fn main() {
    let min_slice = env_f64("LV_GATE_MIN_SLICE_SPEEDUP", 1.8);
    let min_solver = env_f64("LV_GATE_MIN_SOLVER_SPEEDUP", 1.0);
    let assembly_path = std::env::var("LV_BENCH_JSON")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_assembly.json").into());
    let solver_path = std::env::var("LV_BENCH_SOLVER_JSON")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_solver.json").into());

    println!("perf-regression gate (slice floor {min_slice:.2}x, solver floor {min_solver:.2}x)\n");
    let assembly_ok =
        run_gate("assembly bench", &assembly_path, |json| gate_assembly_bench(json, min_slice));
    let solver_ok =
        run_gate("solver bench", &solver_path, |json| gate_solver_bench(json, min_solver));

    if assembly_ok && solver_ok {
        println!("\ngate passed");
    } else {
        println!("\ngate FAILED");
        std::process::exit(1);
    }
}
