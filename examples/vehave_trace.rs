//! Vehave-style vector-instruction tracing: run one `VECTOR_SIZE` block of
//! the mini-app with the per-instruction tracer enabled, print the class/VL
//! histograms and write a Paraver-like CSV trace to `target/vehave_trace.csv`.
//!
//! ```text
//! cargo run --release --example vehave_trace
//! ```

use alya_longvec::prelude::*;
use lv_sim::memory::MemoryModel;

fn main() {
    let mesh = BoxMeshBuilder::new(8, 8, 8).build();
    let config = KernelConfig::new(256, OptLevel::Vec1);
    let app = SimulatedMiniApp::new(&mesh, config);

    // Enable the tracer (cap at one million events to bound memory).
    let machine_config =
        MachineConfig { memory_model: MemoryModel::Caches, trace: Some(1_000_000) };
    let run = app.run_with(Platform::riscv_vec(), true, machine_config);

    println!(
        "traced {} elements in {} chunks on {}: {:.0} cycles",
        mesh.num_elements(),
        app.num_chunks(),
        run.platform.kind.name(),
        run.total_cycles()
    );

    // The run itself only keeps counters; re-run a single chunk with tracing
    // through the Machine directly for the detailed dump.
    let metrics = RunMetrics::from_counters(&run.counters, run.platform.vlmax);
    println!("\nper-phase vector-instruction summary:");
    println!(
        "{:>7} {:>12} {:>12} {:>8} {:>8}",
        "phase", "vector instr", "vector mem", "AVL", "vCPI"
    );
    for p in &metrics.phases {
        println!(
            "{:>7} {:>12} {:>12} {:>8.1} {:>8.1}",
            p.phase,
            p.vector_instructions,
            p.vector_mem_instructions,
            p.avg_vector_length,
            p.vector_cpi
        );
    }

    // Dump a trace of the first chunk only (full traces are huge).
    let small_mesh = BoxMeshBuilder::new(4, 4, 4).build();
    let small_app = SimulatedMiniApp::new(&small_mesh, KernelConfig::new(64, OptLevel::Vec1));
    let traced = small_app.run_with(Platform::riscv_vec(), true, machine_config);
    // Counters do not hold the trace; use the Machine API directly for CSV.
    let mut machine = Machine::with_config(
        Platform::riscv_vec(),
        MachineConfig { memory_model: MemoryModel::Caches, trace: Some(200_000) },
    );
    let builder = lv_kernel::workload::WorkloadBuilder::new(
        &small_mesh,
        KernelConfig::new(64, OptLevel::Vec1),
    );
    let chunk = lv_mesh::chunks::ElementChunks::new(&small_mesh, 64);
    let vectorizer = lv_compiler::vectorizer::Vectorizer::new(256);
    for (phase, nest) in builder.phase_nests(&chunk.chunks()[0]) {
        machine.begin_phase(phase);
        let plan = vectorizer.plan(&nest);
        lv_compiler::codegen::emit_loop_nest(&mut machine, &nest, &plan);
        machine.end_phase();
    }
    println!("\n{}", machine.tracer().summary());

    let csv = machine.tracer().to_csv();
    let path = std::path::Path::new("target").join("vehave_trace.csv");
    std::fs::create_dir_all("target").ok();
    std::fs::write(&path, &csv).expect("failed to write trace");
    println!("wrote {} trace lines to {}", csv.lines().count() - 1, path.display());
    let _ = traced;
}
