//! Lid-driven cavity flow: the classic internal-flow benchmark, run as a
//! sequence of semi-implicit momentum steps using the full pipeline —
//! assembly (the paper's mini-app), Dirichlet conditions and a Krylov solve
//! per step.
//!
//! The whole time step runs on one shared worker pool **end to end**: the
//! mesh-colored assembly sweep and the momentum solve reuse the same
//! [`Team`], spawned once for the run.  The momentum solve goes through
//! `lv_kernel::solve_momentum_on` behind the [`MomentumPath`] flag: the
//! default **batched** path streams the matrix once per Krylov iteration
//! for all three velocity components (SpMM), the **sequential** path is the
//! three-single-solves oracle — the two are bitwise identical per
//! component, so the printed trajectory does not depend on the flag.
//!
//! The `order` argument exercises the renumbering pipeline: `orig` keeps
//! the generator's (already bandwidth-optimal) node order, `scrambled`
//! emulates the arbitrary numbering of an imported unstructured mesh, and
//! `rcm` applies reverse Cuthill–McKee on top of the scramble, printing the
//! locality metrics it recovers.  Everything downstream — fields, boundary
//! conditions, assembly, solver — runs on the renumbered mesh unchanged.
//!
//! ```text
//! cargo run --release --example cavity_flow -- [steps] [threads] [seq|batched] [orig|scrambled|rcm]
//! ```

use alya_longvec::prelude::*;
use lv_kernel::{solve_momentum_on, MomentumPath};
use lv_mesh::renumber::{reverse_cuthill_mckee, LocalityReport, NodePermutation};
use lv_mesh::Vec3;

fn main() {
    let steps: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    let threads: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(1).max(1);
    let path = match std::env::args().nth(3) {
        None => MomentumPath::Batched,
        Some(arg) => MomentumPath::from_arg(&arg).unwrap_or_else(|| {
            eprintln!("unknown momentum path '{arg}' (expected seq|batched), using 'batched'");
            MomentumPath::Batched
        }),
    };
    let order = match std::env::args().nth(4) {
        None => "orig".to_string(),
        Some(arg) => match arg.as_str() {
            "orig" | "scrambled" | "rcm" => arg,
            other => {
                eprintln!(
                    "unknown node order '{other}' (expected orig|scrambled|rcm), using 'orig'"
                );
                "orig".to_string()
            }
        },
    };

    let mut mesh = BoxMeshBuilder::new(8, 8, 8).lid_driven_cavity().build();
    let config = KernelConfig::new(128, OptLevel::Vec1).with_viscosity(5e-2).with_dt(0.05);
    match order.as_str() {
        "scrambled" | "rcm" => {
            // Emulate an imported unstructured mesh: scramble the generator's
            // lexicographic order (which is already bandwidth-optimal).
            let scramble = NodePermutation::scrambled(mesh.num_nodes(), 0x5eed);
            mesh = mesh.renumber_nodes(&scramble);
            let before = LocalityReport::measure(&mesh, config.vector_size);
            if order == "rcm" {
                mesh = mesh.renumber_nodes(&reverse_cuthill_mckee(&mesh));
                let after = LocalityReport::measure(&mesh, config.vector_size);
                println!(
                    "rcm renumbering: bandwidth {} -> {} ({:.1}x), mean chunk gather span \
                     {:.0} -> {:.0}",
                    before.bandwidth,
                    after.bandwidth,
                    before.bandwidth as f64 / after.bandwidth as f64,
                    before.mean_chunk_span,
                    after.mean_chunk_span
                );
            } else {
                println!(
                    "scrambled node order: bandwidth {}, mean chunk gather span {:.0}",
                    before.bandwidth, before.mean_chunk_span
                );
            }
        }
        _ => {}
    }
    let assembly = NastinAssembly::new(mesh.clone(), config);

    // Initial state: fluid at rest, lid moving with unit velocity.
    let mut velocity = VectorField::zeros(&mesh);
    velocity.apply_boundary_conditions(&mesh, Vec3::new(1.0, 0.0, 0.0), Vec3::ZERO);
    let pressure = Field::zeros(&mesh);

    println!(
        "lid-driven cavity: {} elements, dt = {}, nu = {}, {} steps, {} worker thread(s), \
         {} momentum solve, {} node order",
        mesh.num_elements(),
        config.dt,
        config.viscosity,
        steps,
        threads,
        path.name(),
        order
    );
    println!("{:>5} {:>14} {:>12} {:>16}", "step", "solver iters", "residual", "kinetic energy");

    // One pool for the whole run: the colored assembly sweep and the Krylov
    // solves of every step share these workers.
    let team = Team::new(threads);
    let mut matrix = assembly.new_matrix();
    let mut rhs = vec![0.0; 3 * mesh.num_nodes()];
    let mut workspaces: Vec<lv_kernel::ElementWorkspace> =
        (0..threads).map(|_| lv_kernel::ElementWorkspace::new(config.vector_size)).collect();

    for step in 1..=steps {
        // Always the colored sweep (a one-worker team runs it serially):
        // the trajectory is bitwise identical for every thread count.
        assembly.assemble_parallel_into_on(
            &team,
            &velocity,
            &pressure,
            &mut matrix,
            &mut rhs,
            &mut workspaces,
        );
        assembly.apply_dirichlet(&mut matrix, &mut rhs);

        // Solve the three momentum-increment systems (shared matrix) on the
        // same pool — one SpMM-fused solve or three sequential ones,
        // depending on the flag; bitwise the same either way.
        let solve = solve_momentum_on(&team, &matrix, &rhs, &SolveOptions::default(), path)
            .expect("momentum system must converge");

        // Advance the velocity and re-impose the boundary conditions.
        let n = mesh.num_nodes();
        let mut increment = VectorField::zeros(&mesh);
        increment.as_mut_slice().copy_from_slice(&solve.increment);
        velocity.axpy(1.0, &increment);
        velocity.apply_boundary_conditions(&mesh, Vec3::new(1.0, 0.0, 0.0), Vec3::ZERO);

        let kinetic: f64 = (0..n).map(|i| 0.5 * velocity.get(i).norm_sq()).sum();
        println!(
            "{step:>5} {:>14} {:>12.2e} {kinetic:>16.6}",
            solve.total_iterations(),
            solve.worst_residual
        );
    }

    println!("\nfinal maximum velocity magnitude: {:.4}", velocity.max_magnitude());
    println!(
        "(the lid drives a recirculating vortex; interior velocities stay below the lid speed)"
    );
}
