//! Lid-driven cavity flow — now a thin wrapper over the fractional-step
//! driver: every step runs predictor (colored parallel assembly + pooled
//! batched momentum solve), pressure-Poisson projection and velocity
//! correction on **one** shared worker pool, so the pressure field evolves
//! instead of staying the zero spectator it was when this example carried
//! its own hand-rolled momentum-only loop.
//!
//! The `order` argument still exercises the renumbering pipeline: `orig`
//! keeps the generator's (already bandwidth-optimal) node order, `scrambled`
//! emulates the arbitrary numbering of an imported unstructured mesh, and
//! `rcm` applies reverse Cuthill–McKee on top of the scramble.  The driver
//! runs on the renumbered mesh unchanged ([`Stepper::with_mesh`]).
//!
//! ```text
//! cargo run --release --example cavity_flow -- [steps] [threads] [seq|batched] [orig|scrambled|rcm]
//! ```

use alya_longvec::prelude::*;
use lv_driver::{Scenario, ScenarioKind, Stepper, StepperConfig};
use lv_kernel::MomentumPath;
use lv_mesh::renumber::{reverse_cuthill_mckee, LocalityReport, NodePermutation};

fn main() {
    let steps: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    let threads: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(1).max(1);
    let path = match std::env::args().nth(3) {
        None => MomentumPath::Batched,
        Some(arg) => MomentumPath::from_arg(&arg).unwrap_or_else(|| {
            eprintln!("unknown momentum path '{arg}' (expected seq|batched), using 'batched'");
            MomentumPath::Batched
        }),
    };
    let order = match std::env::args().nth(4) {
        None => "orig".to_string(),
        Some(arg) => match arg.as_str() {
            "orig" | "scrambled" | "rcm" => arg,
            other => {
                eprintln!(
                    "unknown node order '{other}' (expected orig|scrambled|rcm), using 'orig'"
                );
                "orig".to_string()
            }
        },
    };

    let scenario = Scenario::new(ScenarioKind::LidDrivenCavity, 8);
    let config = StepperConfig::default().with_momentum_path(path);
    let mut mesh = scenario.build_mesh();
    match order.as_str() {
        "scrambled" | "rcm" => {
            // Emulate an imported unstructured mesh: scramble the generator's
            // lexicographic order (which is already bandwidth-optimal).
            let scramble = NodePermutation::scrambled(mesh.num_nodes(), 0x5eed);
            mesh = mesh.renumber_nodes(&scramble);
            let before = LocalityReport::measure(&mesh, config.vector_size);
            if order == "rcm" {
                mesh = mesh.renumber_nodes(&reverse_cuthill_mckee(&mesh));
                let after = LocalityReport::measure(&mesh, config.vector_size);
                println!(
                    "rcm renumbering: bandwidth {} -> {} ({:.1}x), mean chunk gather span \
                     {:.0} -> {:.0}",
                    before.bandwidth,
                    after.bandwidth,
                    before.bandwidth as f64 / after.bandwidth as f64,
                    before.mean_chunk_span,
                    after.mean_chunk_span
                );
            } else {
                println!(
                    "scrambled node order: bandwidth {}, mean chunk gather span {:.0}",
                    before.bandwidth, before.mean_chunk_span
                );
            }
        }
        _ => {}
    }

    println!(
        "lid-driven cavity: {} elements, nu = {}, {} steps, {} worker thread(s), \
         {} momentum solve, {} node order",
        mesh.num_elements(),
        scenario.viscosity,
        steps,
        threads,
        path.name(),
        order
    );
    println!(
        "{:>5} {:>9} {:>8} {:>8} {:>12} {:>12} {:>16} {:>12}",
        "step", "dt", "mom-it", "poi-it", "div(pre)", "div(post)", "kinetic energy", "max |p|"
    );

    // One pool for the whole run: assembly, momentum solve, Poisson solve
    // and correction of every step share these workers, and the trajectory
    // is bitwise identical for every thread count.
    let team = Team::new(threads);
    let mut stepper = Stepper::with_mesh(scenario, config, mesh);
    for _ in 0..steps {
        // Recovering steps: a transient solver failure rolls back and
        // retries with Δt halved; only an exhausted budget ends the run,
        // non-zero and with the phase/step/residual diagnostic, not a panic.
        let report = match stepper.step_recovering_on(&team) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        };
        println!(
            "{:>5} {:>9.5} {:>8} {:>8} {:>12.3e} {:>12.3e} {:>16.6} {:>12.4}",
            report.step,
            report.dt,
            report.momentum_iterations,
            report.poisson_iterations,
            report.divergence_pre,
            report.divergence_post,
            report.kinetic_energy,
            stepper.state().pressure.max_abs()
        );
    }

    println!(
        "\nfinal maximum velocity magnitude: {:.4} (t = {:.3})",
        stepper.state().velocity.max_magnitude(),
        stepper.state().time
    );
    println!(
        "(the lid drives a recirculating vortex; interior velocities stay below the lid speed, \
         and the projection keeps the discrete divergence in check)"
    );
}
