//! Lid-driven cavity flow: the classic internal-flow benchmark, run as a
//! sequence of semi-implicit momentum steps using the full pipeline —
//! assembly (the paper's mini-app), Dirichlet conditions and a Krylov solve
//! per step.
//!
//! The whole time step runs on one shared worker pool **end to end**: the
//! mesh-colored assembly sweep and the three BiCGSTAB solves reuse the same
//! [`Team`], spawned once for the run.  Both the colored schedule and the
//! solver kernels are deterministic, so the entire trajectory — iteration
//! counts, residuals, kinetic energies — is **bitwise identical for every
//! thread count** (the colored sweep runs at any worker count, one worker
//! included; vs the mesh-order serial sweep it agrees to rounding
//! accuracy).
//!
//! ```text
//! cargo run --release --example cavity_flow -- [steps] [threads]
//! ```

use alya_longvec::prelude::*;
use lv_mesh::Vec3;

fn main() {
    let steps: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    let threads: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(1);
    let threads = threads.max(1);

    let mesh = BoxMeshBuilder::new(8, 8, 8).lid_driven_cavity().build();
    let config = KernelConfig::new(128, OptLevel::Vec1).with_viscosity(5e-2).with_dt(0.05);
    let assembly = NastinAssembly::new(mesh.clone(), config);

    // Initial state: fluid at rest, lid moving with unit velocity.
    let mut velocity = VectorField::zeros(&mesh);
    velocity.apply_boundary_conditions(&mesh, Vec3::new(1.0, 0.0, 0.0), Vec3::ZERO);
    let pressure = Field::zeros(&mesh);

    println!(
        "lid-driven cavity: {} elements, dt = {}, nu = {}, {} steps, {} worker thread(s)",
        mesh.num_elements(),
        config.dt,
        config.viscosity,
        steps,
        threads
    );
    println!("{:>5} {:>14} {:>12} {:>16}", "step", "solver iters", "residual", "kinetic energy");

    // One pool for the whole run: the colored assembly sweep and the Krylov
    // solves of every step share these workers.
    let team = Team::new(threads);
    let mut matrix = assembly.new_matrix();
    let mut rhs = vec![0.0; 3 * mesh.num_nodes()];
    let mut workspaces: Vec<lv_kernel::ElementWorkspace> =
        (0..threads).map(|_| lv_kernel::ElementWorkspace::new(config.vector_size)).collect();

    for step in 1..=steps {
        // Always the colored sweep (a one-worker team runs it serially):
        // the trajectory is bitwise identical for every thread count.
        assembly.assemble_parallel_into_on(
            &team,
            &velocity,
            &pressure,
            &mut matrix,
            &mut rhs,
            &mut workspaces,
        );
        assembly.apply_dirichlet(&mut matrix, &mut rhs);

        // Solve the three momentum-increment systems (shared matrix) on the
        // same pool.
        let n = mesh.num_nodes();
        let mut increment = VectorField::zeros(&mesh);
        let mut total_iters = 0;
        let mut worst_residual: f64 = 0.0;
        for dim in 0..3 {
            let b: Vec<f64> = (0..n).map(|i| rhs[3 * i + dim]).collect();
            let solve = bicgstab_on(&team, &matrix, &b, &SolveOptions::default())
                .expect("momentum system must converge");
            total_iters += solve.iterations;
            worst_residual = worst_residual.max(solve.final_residual());
            for (node, &du) in solve.solution.iter().enumerate() {
                let mut v = increment.get(node);
                v[dim] = du;
                increment.set(node, v);
            }
        }

        // Advance the velocity and re-impose the boundary conditions.
        velocity.axpy(1.0, &increment);
        velocity.apply_boundary_conditions(&mesh, Vec3::new(1.0, 0.0, 0.0), Vec3::ZERO);

        let kinetic: f64 = (0..n).map(|i| 0.5 * velocity.get(i).norm_sq()).sum();
        println!("{step:>5} {total_iters:>14} {worst_residual:>12.2e} {kinetic:>16.6}");
    }

    println!("\nfinal maximum velocity magnitude: {:.4}", velocity.max_magnitude());
    println!(
        "(the lid drives a recirculating vortex; interior velocities stay below the lid speed)"
    );
}
